//! Saving and cold-starting the engine through `rpi-store` archives.
//!
//! `rpi-store` owns the container (manifest, checksums, segment files);
//! this module owns what goes *inside* the segments — the engine's
//! interned world, serialized so that loading is a linear decode instead
//! of a re-simulation:
//!
//! * **symbol segment** — the [`WorldInterner`] tables in symbol order,
//!   one *block per snapshot* (the interner is append-only across a
//!   series, so each block is just what its snapshot added; block
//!   boundaries restore the per-snapshot watermarks on load).
//! * **full segment** — one snapshot fully materialized: per-vantage
//!   shard tries in the flattened pointer-free layout of
//!   [`bgp_types::flat`], SA caches, relationship maps (elided when
//!   byte-identical to the predecessor's, restoring `Arc` sharing on
//!   load), import typicality and community classes.
//! * **delta segment** — one snapshot as the structured
//!   [`OutputDelta`] events it was ingested from, plus the list of
//!   vantages that disappeared and the recomputed analyses of
//!   `analyses_dirty` Looking-Glass vantages. Loading replays the events
//!   through [`Snapshot::patch_vantage`] — the *same* code the live
//!   incremental ingest runs — against an oracle graph rebuilt from the
//!   predecessor's relationship map. The differential-testing contract
//!   of incremental ingest therefore extends to disk for free: **load
//!   of a delta segment ≡ full re-index**, byte-for-byte at the
//!   response level.
//!
//! The full-vs-delta choice per snapshot is [`delta_plan`]'s policy:
//! a snapshot is written as a delta iff it was built incrementally
//! (it retained its events), its relationship maps match its
//! predecessor's, no vantage appeared, and no vantage changed kind —
//! everything else (first snapshots, MRT ingests, oracle flips, feed
//! appearances) falls back to a self-contained full segment.
//!
//! Decoding is paranoid: every count, symbol and flag is validated, and
//! every failure surfaces as a typed [`StoreError`] carrying the segment
//! index and absolute byte offset. A failed load returns an error, never
//! a partially-populated engine.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bgp_sim::OutputDelta;
use bgp_types::codec::{put_prefix, put_str, put_uvarint, CodecError, Reader};
use bgp_types::intern::Symbol;
use bgp_types::{flat, Asn, Community, CowTrie, Relationship};
use net_topology::{AsGraph, CustomerCone};
use rpi_sec::{Roa, RoaTable};
use rpi_store::{
    read_segment, write_segment, Manifest, SegmentEntry, SegmentKind, SegmentRef, StoreError,
    MANIFEST_FILE, SEG_FLAG_KEYFRAME,
};

use crate::engine::QueryEngine;
use crate::intern::{AsnSym, Interning, PrefixSym, WorldInterner};
use crate::snapshot::{
    CompactRoute, Provenance, SaCache, Snapshot, SnapshotId, VantageKind, VantageTable,
};

/// One segment's on-disk identity, kept on the engine after a save or
/// load so storage cost is visible next to sharing stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Index in the manifest's segment table.
    pub index: usize,
    /// What the segment holds.
    pub kind: SegmentKind,
    /// File name inside the archive directory.
    pub file: String,
    /// Byte length on disk.
    pub bytes: u64,
    /// CRC-32 of the bytes.
    pub crc32: u32,
    /// Snapshot label (empty for the symbols segment).
    pub label: String,
    /// Whether the segment is a self-contained keyframe a cold reader
    /// can attach to without a predecessor.
    pub keyframe: bool,
}

impl SegmentMeta {
    pub(crate) fn from_entry(index: usize, e: &SegmentEntry) -> SegmentMeta {
        SegmentMeta {
            index,
            kind: e.kind,
            file: e.file.clone(),
            bytes: e.bytes,
            crc32: e.crc32,
            label: e.label.clone(),
            keyframe: e.is_keyframe(),
        }
    }
}

/// Where an engine's bytes live on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveInfo {
    /// The archive directory.
    pub dir: PathBuf,
    /// The symbol segment.
    pub symbols: SegmentMeta,
    /// One segment per snapshot, in snapshot order.
    pub snapshots: Vec<SegmentMeta>,
    /// The ROA table segment (absent when the engine holds no ROAs).
    pub roas: Option<SegmentMeta>,
}

impl ArchiveInfo {
    /// Total segment bytes on disk (manifest file excluded).
    pub fn total_bytes(&self) -> usize {
        self.symbols.bytes as usize
            + self.roas.as_ref().map_or(0, |r| r.bytes as usize)
            + self
                .snapshots
                .iter()
                .map(|s| s.bytes as usize)
                .sum::<usize>()
    }

    pub(crate) fn from_manifest(dir: &Path, manifest: &Manifest) -> ArchiveInfo {
        let mut symbols = None;
        let mut roas = None;
        let mut snapshots = Vec::new();
        for (i, e) in manifest.segments.iter().enumerate() {
            let meta = SegmentMeta::from_entry(i, e);
            match e.kind {
                SegmentKind::Symbols => symbols = Some(meta),
                SegmentKind::Roa => roas = Some(meta),
                SegmentKind::Full | SegmentKind::Delta => snapshots.push(meta),
            }
        }
        ArchiveInfo {
            dir: dir.to_path_buf(),
            symbols: symbols.expect("callers verified a symbols segment exists"),
            snapshots,
            roas,
        }
    }
}

// ---------------------------------------------------------------------------
// small shared vocabulary
// ---------------------------------------------------------------------------

fn sym_u(s: AsnSym) -> u64 {
    s.0 .0 as u64
}

fn psym_u(p: PrefixSym) -> u64 {
    p.0 .0 as u64
}

fn rel_to_u8(r: Relationship) -> u8 {
    match r {
        Relationship::Provider => 0,
        Relationship::Customer => 1,
        Relationship::Peer => 2,
        Relationship::Sibling => 3,
    }
}

fn rel_from_u8(v: u8, offset: usize) -> Result<Relationship, CodecError> {
    match v {
        0 => Ok(Relationship::Provider),
        1 => Ok(Relationship::Customer),
        2 => Ok(Relationship::Peer),
        3 => Ok(Relationship::Sibling),
        _ => Err(CodecError::Invalid {
            offset,
            what: "relationship tag",
        }),
    }
}

/// Reads a symbol and bounds-checks it against the loaded table size.
fn read_sym(r: &mut Reader<'_>, limit: usize, what: &'static str) -> Result<Symbol, CodecError> {
    let offset = r.position();
    let v = r.uvarint()?;
    if v >= limit as u64 {
        return Err(CodecError::Invalid { offset, what });
    }
    Ok(Symbol(v as u32))
}

fn read_asn(r: &mut Reader<'_>) -> Result<Asn, CodecError> {
    let offset = r.position();
    let v = r.uvarint()?;
    u32::try_from(v).map(Asn).map_err(|_| CodecError::Invalid {
        offset,
        what: "ASN",
    })
}

// ---------------------------------------------------------------------------
// the symbol segment
// ---------------------------------------------------------------------------

const SYMBOLS_FILE: &str = "symbols.seg";

fn encode_symbols(engine: &QueryEngine) -> Vec<u8> {
    let mut out = Vec::new();
    let asns: Vec<Asn> = engine.interner.iter_asns().collect();
    let prefixes: Vec<_> = engine.interner.iter_prefixes().collect();
    let comms: Vec<Community> = engine.interner.iter_communities().collect();

    put_uvarint(&mut out, engine.snapshots.len() as u64);
    let mut prev = (0usize, 0usize, 0usize);
    for snap in &engine.snapshots {
        let hw = snap.interned_watermark;
        debug_assert!(hw.0 >= prev.0 && hw.1 >= prev.1 && hw.2 >= prev.2);
        put_uvarint(&mut out, (hw.0 - prev.0) as u64);
        for &a in &asns[prev.0..hw.0] {
            put_uvarint(&mut out, a.0 as u64);
        }
        put_uvarint(&mut out, (hw.1 - prev.1) as u64);
        for &p in &prefixes[prev.1..hw.1] {
            put_prefix(&mut out, p);
        }
        put_uvarint(&mut out, (hw.2 - prev.2) as u64);
        for &c in &comms[prev.2..hw.2] {
            put_uvarint(&mut out, c.as_u32() as u64);
        }
        prev = hw;
    }
    out
}

/// Loads the symbol blocks into `interner`, returning the per-snapshot
/// watermarks the block boundaries encode.
fn decode_symbols(
    raw: &[u8],
    interner: &mut WorldInterner,
) -> Result<Vec<(usize, usize, usize)>, CodecError> {
    let mut r = Reader::new(raw);
    let n_blocks = r.ulen()?;
    let mut watermarks = Vec::with_capacity(n_blocks.min(1 << 16));
    let mut sizes = (0usize, 0usize, 0usize);
    for _ in 0..n_blocks {
        let n = r.ulen()?;
        for _ in 0..n {
            let offset = r.position();
            let a = read_asn(&mut r)?;
            if interner.asn(a) != AsnSym(Symbol(sizes.0 as u32)) {
                return Err(CodecError::Invalid {
                    offset,
                    what: "duplicate ASN symbol",
                });
            }
            sizes.0 += 1;
        }
        let n = r.ulen()?;
        for _ in 0..n {
            let offset = r.position();
            let p = r.prefix()?;
            if interner.prefix(p) != PrefixSym(Symbol(sizes.1 as u32)) {
                return Err(CodecError::Invalid {
                    offset,
                    what: "duplicate prefix symbol",
                });
            }
            sizes.1 += 1;
        }
        let n = r.ulen()?;
        for _ in 0..n {
            let offset = r.position();
            let raw = r.uvarint()?;
            let raw = u32::try_from(raw).map_err(|_| CodecError::Invalid {
                offset,
                what: "community",
            })?;
            let c = Community::new((raw >> 16) as u16, (raw & 0xFFFF) as u16);
            if interner.community(c).0 != Symbol(sizes.2 as u32) {
                return Err(CodecError::Invalid {
                    offset,
                    what: "duplicate community symbol",
                });
            }
            sizes.2 += 1;
        }
        watermarks.push(sizes);
    }
    if !r.is_exhausted() {
        return Err(CodecError::Invalid {
            offset: r.position(),
            what: "trailing bytes after symbol blocks",
        });
    }
    Ok(watermarks)
}

// ---------------------------------------------------------------------------
// the ROA segment
// ---------------------------------------------------------------------------

const ROAS_FILE: &str = "roas.seg";

/// The ROA table stores raw prefixes and ASNs (ROAs come from an
/// out-of-band trust anchor, not from routing data), so the segment is
/// self-contained: no symbol-table coupling, no watermark bookkeeping.
fn encode_roas(table: &RoaTable) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, table.len() as u64);
    for roa in table.roas() {
        put_prefix(&mut out, roa.prefix);
        out.push(roa.max_len);
        put_uvarint(&mut out, roa.origin.0 as u64);
    }
    out
}

fn decode_roas(raw: &[u8]) -> Result<RoaTable, CodecError> {
    let mut r = Reader::new(raw);
    let n = r.ulen()?;
    let mut roas = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let prefix = r.prefix()?;
        let offset = r.position();
        let max_len = r.u8()?;
        if max_len < prefix.len() || max_len > 32 {
            return Err(CodecError::Invalid {
                offset,
                what: "ROA max-length",
            });
        }
        let origin = read_asn(&mut r)?;
        roas.push(Roa {
            prefix,
            max_len,
            origin,
        });
    }
    if !r.is_exhausted() {
        return Err(CodecError::Invalid {
            offset: r.position(),
            what: "trailing bytes after ROA table",
        });
    }
    Ok(RoaTable::new(roas))
}

// ---------------------------------------------------------------------------
// full segments
// ---------------------------------------------------------------------------

const FLAG_REL_SHARED: u8 = 1;
/// The full segment carries a trailing vantage directory + footer (see
/// [`encode_vantage_dir`]) so the cold tier can address shard tries
/// without decoding the body. Written by format version 2; old readers
/// reject it loudly, old segments (bit clear) decode unchanged.
const FLAG_DIRECTORY: u8 = 2;
const FULL_FLAG_MASK: u8 = FLAG_REL_SHARED | FLAG_DIRECTORY;

/// Trailing magic of a directory-carrying full segment.
const DIR_MAGIC: [u8; 4] = *b"RPD2";
/// Footer size: u64 directory offset + magic.
const DIR_FOOTER: usize = 8 + DIR_MAGIC.len();

fn encode_route(route: &CompactRoute, out: &mut Vec<u8>) {
    put_uvarint(out, sym_u(route.next_hop));
    put_uvarint(out, route.path.len() as u64);
    for &s in route.path.iter() {
        put_uvarint(out, sym_u(s));
    }
}

pub(crate) fn decode_route(r: &mut Reader<'_>, n_asns: usize) -> Result<CompactRoute, CodecError> {
    let next_hop = AsnSym(read_sym(r, n_asns, "next-hop symbol")?);
    let offset = r.position();
    let n = r.ulen()?;
    if n == 0 {
        return Err(CodecError::Invalid {
            offset,
            what: "empty AS path",
        });
    }
    let mut path = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        path.push(AsnSym(read_sym(r, n_asns, "path symbol")?));
    }
    Ok(CompactRoute {
        next_hop,
        path: path.into_boxed_slice(),
    })
}

fn rel_maps_equal(a: &Snapshot, b: &Snapshot) -> bool {
    (Arc::ptr_eq(&a.relationships, &b.relationships) || *a.relationships == *b.relationships)
        && (Arc::ptr_eq(&a.neighbor_counts, &b.neighbor_counts)
            || *a.neighbor_counts == *b.neighbor_counts)
}

/// Encodes one snapshot as a full segment. `force_standalone` suppresses
/// relationship sharing so the segment decodes with no predecessor — the
/// keyframe policy's lever. Returns the payload and whether it came out
/// self-contained (a keyframe the cold tier can attach to).
pub(crate) fn encode_full(
    snap: &Snapshot,
    prev: Option<&Snapshot>,
    force_standalone: bool,
) -> (Vec<u8>, bool) {
    let mut out = Vec::new();
    put_str(&mut out, &snap.label);

    let shared = !force_standalone && prev.is_some_and(|p| rel_maps_equal(snap, p));
    out.push(if shared { FLAG_REL_SHARED } else { 0 } | FLAG_DIRECTORY);
    if !shared {
        let mut rels: Vec<(&(AsnSym, AsnSym), &Relationship)> = snap.relationships.iter().collect();
        rels.sort_unstable_by_key(|((a, b), _)| (*a, *b));
        put_uvarint(&mut out, rels.len() as u64);
        for ((a, b), &rel) in rels {
            put_uvarint(&mut out, sym_u(*a));
            put_uvarint(&mut out, sym_u(*b));
            out.push(rel_to_u8(rel));
        }
        type CountRow<'a> = (&'a AsnSym, &'a (usize, usize, usize, usize));
        let mut counts: Vec<CountRow<'_>> = snap.neighbor_counts.iter().collect();
        counts.sort_unstable_by_key(|(s, _)| **s);
        put_uvarint(&mut out, counts.len() as u64);
        for (&s, &(p, c, r, b)) in counts {
            put_uvarint(&mut out, sym_u(s));
            for v in [p, c, r, b] {
                put_uvarint(&mut out, v as u64);
            }
        }
    }

    // Vantage tables: flattened shard tries. Each shard's byte span is
    // recorded for the trailing directory, so the cold tier can wrap a
    // FlatTrie around it straight off a mapping.
    let mut dir = VantageDir {
        entries: Vec::with_capacity(snap.vantages.len()),
    };
    let mut vantages: Vec<(&AsnSym, &Arc<VantageTable>)> = snap.vantages.iter().collect();
    vantages.sort_unstable_by_key(|(s, _)| **s);
    put_uvarint(&mut out, vantages.len() as u64);
    for (&s, table) in &vantages {
        put_uvarint(&mut out, sym_u(s));
        out.push(match table.kind {
            VantageKind::LookingGlass => 0,
            VantageKind::CollectorPeer => 1,
        });
        put_uvarint(&mut out, table.route_count as u64);
        let mut shards = Vec::with_capacity(table.shards.len());
        for shard in &table.shards {
            let start = out.len();
            flat::write_trie(shard, &mut out, &mut |route, out| encode_route(route, out));
            shards.push((start, out.len() - start));
        }
        dir.entries.push(VantageDirEntry {
            sym: s,
            kind: table.kind,
            route_count: table.route_count,
            shards,
        });
    }

    // SA caches.
    let mut sa: Vec<(&AsnSym, &Arc<SaCache>)> = snap.sa.iter().collect();
    sa.sort_unstable_by_key(|(s, _)| **s);
    put_uvarint(&mut out, sa.len() as u64);
    for (&owner, cache) in sa {
        put_uvarint(&mut out, sym_u(owner));
        put_uvarint(&mut out, cache.customer_prefixes as u64);
        for map in [&cache.sa, &cache.exported] {
            let mut entries: Vec<(&PrefixSym, &AsnSym)> = map.iter().collect();
            entries.sort_unstable_by_key(|(p, _)| **p);
            put_uvarint(&mut out, entries.len() as u64);
            for (&p, &a) in entries {
                put_uvarint(&mut out, psym_u(p));
                put_uvarint(&mut out, sym_u(a));
            }
        }
    }

    // LG analyses.
    let mut typ: Vec<(&AsnSym, &(usize, usize))> = snap.typicality.iter().collect();
    typ.sort_unstable_by_key(|(s, _)| **s);
    put_uvarint(&mut out, typ.len() as u64);
    for (&s, &(compared, typical)) in typ {
        put_uvarint(&mut out, sym_u(s));
        put_uvarint(&mut out, compared as u64);
        put_uvarint(&mut out, typical as u64);
    }
    let mut cc: Vec<(&AsnSym, &Arc<HashMap<AsnSym, Relationship>>)> =
        snap.community_class.iter().collect();
    cc.sort_unstable_by_key(|(s, _)| **s);
    put_uvarint(&mut out, cc.len() as u64);
    for (&owner, classes) in cc {
        put_uvarint(&mut out, sym_u(owner));
        let mut entries: Vec<(&AsnSym, &Relationship)> = classes.iter().collect();
        entries.sort_unstable_by_key(|(s, _)| **s);
        put_uvarint(&mut out, entries.len() as u64);
        for (&n, &rel) in entries {
            put_uvarint(&mut out, sym_u(n));
            out.push(rel_to_u8(rel));
        }
    }

    // Directory + fixed footer (offset, magic) so a mapped reader can
    // find the directory from the segment's tail alone.
    let dir_offset = out.len();
    encode_vantage_dir(&dir, &mut out);
    out.extend_from_slice(&(dir_offset as u64).to_be_bytes());
    out.extend_from_slice(&DIR_MAGIC);
    (out, !shared)
}

// ---------------------------------------------------------------------------
// the vantage directory: the cold tier's index into a full segment
// ---------------------------------------------------------------------------

/// One vantage's row in a full segment's directory: where each shard's
/// flattened trie lives, as absolute `(offset, len)` spans inside the
/// segment payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VantageDirEntry {
    pub(crate) sym: AsnSym,
    pub(crate) kind: VantageKind,
    pub(crate) route_count: usize,
    pub(crate) shards: Vec<(usize, usize)>,
}

/// A full segment's vantage directory, sorted by symbol (the encode
/// order), so the tier can binary-search it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct VantageDir {
    pub(crate) entries: Vec<VantageDirEntry>,
}

impl VantageDir {
    /// The row for `sym`, if the snapshot indexed it as a vantage.
    pub(crate) fn entry(&self, sym: AsnSym) -> Option<&VantageDirEntry> {
        self.entries
            .binary_search_by_key(&sym, |e| e.sym)
            .ok()
            .map(|i| &self.entries[i])
    }
}

fn encode_vantage_dir(dir: &VantageDir, out: &mut Vec<u8>) {
    put_uvarint(out, dir.entries.len() as u64);
    for e in &dir.entries {
        put_uvarint(out, sym_u(e.sym));
        out.push(match e.kind {
            VantageKind::LookingGlass => 0,
            VantageKind::CollectorPeer => 1,
        });
        put_uvarint(out, e.route_count as u64);
        for &(start, len) in &e.shards {
            put_uvarint(out, start as u64);
            put_uvarint(out, len as u64);
        }
    }
}

/// Decodes a directory whose shard spans must fall inside
/// `payload_end` (the body bytes before the directory itself) and whose
/// symbols must be interned and strictly increasing.
fn decode_vantage_dir(
    r: &mut Reader<'_>,
    n_asns: usize,
    n_shards: usize,
    payload_end: usize,
) -> Result<VantageDir, CodecError> {
    let n = r.ulen()?;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    let mut prev_sym: Option<AsnSym> = None;
    for _ in 0..n {
        let sym_offset = r.position();
        let sym = AsnSym(read_sym(r, n_asns, "directory vantage symbol")?);
        if prev_sym.is_some_and(|p| p >= sym) {
            return Err(CodecError::Invalid {
                offset: sym_offset,
                what: "directory symbols out of order",
            });
        }
        prev_sym = Some(sym);
        let kind_offset = r.position();
        let kind = match r.u8()? {
            0 => VantageKind::LookingGlass,
            1 => VantageKind::CollectorPeer,
            _ => {
                return Err(CodecError::Invalid {
                    offset: kind_offset,
                    what: "directory vantage kind",
                })
            }
        };
        let route_count = r.ulen()?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let span_offset = r.position();
            let start = r.ulen()?;
            let len = r.ulen()?;
            let ok = start.checked_add(len).is_some_and(|end| end <= payload_end);
            if !ok {
                return Err(CodecError::Invalid {
                    offset: span_offset,
                    what: "directory shard span out of bounds",
                });
            }
            shards.push((start, len));
        }
        entries.push(VantageDirEntry {
            sym,
            kind,
            route_count,
            shards,
        });
    }
    Ok(VantageDir { entries })
}

/// Reads the directory of a mapped full segment without decoding its
/// body — the cold tier's attach path. Returns `None` for segments
/// written before the directory existed (a v1 archive: still loadable,
/// just not cold-queryable). Also reports whether the segment is
/// self-contained (no [`FLAG_REL_SHARED`]) and its label.
pub(crate) fn read_mapped_directory(
    raw: &[u8],
    n_asns: usize,
    n_shards: usize,
) -> Result<Option<(VantageDir, bool, String)>, CodecError> {
    let mut r = Reader::new(raw);
    let label = r.str()?.to_string();
    let flag_offset = r.position();
    let flags = r.u8()?;
    if flags & !FULL_FLAG_MASK != 0 {
        return Err(CodecError::Invalid {
            offset: flag_offset,
            what: "unknown full-segment flags",
        });
    }
    if flags & FLAG_DIRECTORY == 0 {
        return Ok(None);
    }
    let self_contained = flags & FLAG_REL_SHARED == 0;
    if raw.len() < DIR_FOOTER {
        return Err(CodecError::Truncated {
            offset: raw.len(),
            wanted: DIR_FOOTER,
        });
    }
    let footer = raw.len() - DIR_FOOTER;
    if raw[footer + 8..] != DIR_MAGIC {
        return Err(CodecError::Invalid {
            offset: footer + 8,
            what: "full-segment directory magic",
        });
    }
    let dir_offset = u64::from_be_bytes(raw[footer..footer + 8].try_into().expect("8 bytes"));
    let dir_offset = usize::try_from(dir_offset)
        .ok()
        .filter(|&o| o < footer)
        .ok_or(CodecError::Invalid {
            offset: footer,
            what: "full-segment directory offset",
        })?;
    let mut r = Reader::with_base(&raw[dir_offset..footer], dir_offset);
    let dir = decode_vantage_dir(&mut r, n_asns, n_shards, dir_offset)?;
    if !r.is_exhausted() {
        return Err(CodecError::Invalid {
            offset: r.position(),
            what: "trailing bytes after vantage directory",
        });
    }
    Ok(Some((dir, self_contained, label)))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn decode_full(
    raw: &[u8],
    id: SnapshotId,
    expect_label: &str,
    prev: Option<&Snapshot>,
    interner: &WorldInterner,
    n_shards: usize,
) -> Result<Snapshot, CodecError> {
    let (n_asns, n_prefixes, _) = interner.sizes();
    let mut r = Reader::new(raw);
    let label_offset = r.position();
    let label = r.str()?;
    if label != expect_label {
        return Err(CodecError::Invalid {
            offset: label_offset,
            what: "label disagrees with manifest",
        });
    }
    let mut snap = Snapshot::empty(id, label);

    let flag_offset = r.position();
    let flags = r.u8()?;
    if flags & !FULL_FLAG_MASK != 0 {
        return Err(CodecError::Invalid {
            offset: flag_offset,
            what: "unknown full-segment flags",
        });
    }
    let has_dir = flags & FLAG_DIRECTORY != 0;
    if flags & FLAG_REL_SHARED != 0 {
        let prev = prev.ok_or(CodecError::Invalid {
            offset: flag_offset,
            what: "relationships shared but segment has no predecessor",
        })?;
        snap.relationships = Arc::clone(&prev.relationships);
        snap.neighbor_counts = Arc::clone(&prev.neighbor_counts);
    } else {
        let n = r.ulen()?;
        let mut rels = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let a = AsnSym(read_sym(&mut r, n_asns, "relationship symbol")?);
            let b = AsnSym(read_sym(&mut r, n_asns, "relationship symbol")?);
            let offset = r.position();
            let rel = rel_from_u8(r.u8()?, offset)?;
            rels.insert((a, b), rel);
        }
        snap.relationships = Arc::new(rels);
        let n = r.ulen()?;
        let mut counts = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let s = AsnSym(read_sym(&mut r, n_asns, "neighbor-count symbol")?);
            let mut vals = [0usize; 4];
            for v in &mut vals {
                *v = r.ulen()?;
            }
            counts.insert(s, (vals[0], vals[1], vals[2], vals[3]));
        }
        snap.neighbor_counts = Arc::new(counts);
    }

    // Vantage tables. Shard byte spans are recorded as decoded so a
    // directory-carrying segment can be held to its directory: every
    // span the directory advertises must be exactly where the body put
    // the trie.
    let mut seen_dir = VantageDir::default();
    let n_vantages = r.ulen()?;
    for _ in 0..n_vantages {
        let owner = AsnSym(read_sym(&mut r, n_asns, "vantage symbol")?);
        let kind_offset = r.position();
        let kind = match r.u8()? {
            0 => VantageKind::LookingGlass,
            1 => VantageKind::CollectorPeer,
            _ => {
                return Err(CodecError::Invalid {
                    offset: kind_offset,
                    what: "vantage kind",
                })
            }
        };
        let count_offset = r.position();
        let route_count = r.ulen()?;
        let mut shards = Vec::with_capacity(n_shards);
        let mut spans = Vec::with_capacity(n_shards);
        let mut inserted = 0usize;
        for _ in 0..n_shards {
            let start = r.position();
            let pairs = flat::read_trie(&mut r, &mut |vr| decode_route(vr, n_asns))?;
            spans.push((start, r.position() - start));
            let mut trie = CowTrie::new();
            for (prefix, route) in pairs {
                if interner.lookup_prefix(prefix).is_none() {
                    return Err(CodecError::Invalid {
                        offset: count_offset,
                        what: "table prefix missing from symbol table",
                    });
                }
                trie.insert(prefix, route);
                inserted += 1;
            }
            shards.push(trie);
        }
        if inserted != route_count {
            return Err(CodecError::Invalid {
                offset: count_offset,
                what: "route count disagrees with trie contents",
            });
        }
        seen_dir.entries.push(VantageDirEntry {
            sym: owner,
            kind,
            route_count,
            shards: spans,
        });
        snap.vantages.insert(
            owner,
            Arc::new(VantageTable {
                kind,
                shards,
                route_count,
            }),
        );
    }

    // SA caches.
    let sa_offset = r.position();
    let n_sa = r.ulen()?;
    if n_sa != n_vantages {
        return Err(CodecError::Invalid {
            offset: sa_offset,
            what: "SA cache count disagrees with vantage count",
        });
    }
    for _ in 0..n_sa {
        let owner_offset = r.position();
        let owner = AsnSym(read_sym(&mut r, n_asns, "SA owner symbol")?);
        if !snap.vantages.contains_key(&owner) {
            return Err(CodecError::Invalid {
                offset: owner_offset,
                what: "SA cache for unknown vantage",
            });
        }
        let mut cache = SaCache {
            customer_prefixes: r.ulen()?,
            ..SaCache::default()
        };
        for which in 0..2 {
            let n = r.ulen()?;
            let map = if which == 0 {
                &mut cache.sa
            } else {
                &mut cache.exported
            };
            for _ in 0..n {
                let p = PrefixSym(read_sym(&mut r, n_prefixes, "SA prefix symbol")?);
                let a = AsnSym(read_sym(&mut r, n_asns, "SA origin symbol")?);
                map.insert(p, a);
            }
        }
        snap.sa.insert(owner, Arc::new(cache));
    }

    // LG analyses.
    let n_typ = r.ulen()?;
    for _ in 0..n_typ {
        let s = AsnSym(read_sym(&mut r, n_asns, "typicality symbol")?);
        let compared = r.ulen()?;
        let typical = r.ulen()?;
        snap.typicality.insert(s, (compared, typical));
    }
    let n_cc = r.ulen()?;
    for _ in 0..n_cc {
        let owner = AsnSym(read_sym(&mut r, n_asns, "community-class symbol")?);
        let n = r.ulen()?;
        let mut classes = HashMap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let neighbor = AsnSym(read_sym(&mut r, n_asns, "community-class symbol")?);
            let offset = r.position();
            let rel = rel_from_u8(r.u8()?, offset)?;
            classes.insert(neighbor, rel);
        }
        snap.community_class.insert(owner, Arc::new(classes));
    }

    if has_dir {
        // The directory must agree byte-for-byte with where the body
        // actually put its tries — a lying directory is corruption, not
        // a source of out-of-band reads for the cold tier.
        let dir_offset = r.position();
        let dir = decode_vantage_dir(&mut r, n_asns, n_shards, dir_offset)?;
        if dir != seen_dir {
            return Err(CodecError::Invalid {
                offset: dir_offset,
                what: "directory disagrees with segment body",
            });
        }
        let footer_offset = r.position();
        let recorded = u64::from_be_bytes(r.bytes(8)?.try_into().expect("8 bytes"));
        if recorded != dir_offset as u64 {
            return Err(CodecError::Invalid {
                offset: footer_offset,
                what: "full-segment directory offset",
            });
        }
        if r.bytes(DIR_MAGIC.len())? != DIR_MAGIC {
            return Err(CodecError::Invalid {
                offset: footer_offset + 8,
                what: "full-segment directory magic",
            });
        }
    }

    if !r.is_exhausted() {
        return Err(CodecError::Invalid {
            offset: r.position(),
            what: "trailing bytes after full segment",
        });
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// delta segments
// ---------------------------------------------------------------------------

/// The archive's full-vs-delta policy: the retained events, iff they are
/// cleanly replayable against the predecessor without any view data.
pub(crate) fn delta_plan<'a>(snap: &'a Snapshot, prev: &Snapshot) -> Option<&'a Arc<OutputDelta>> {
    let Provenance::Delta(delta) = &snap.provenance else {
        return None;
    };
    // A vantage that appeared (or switched kind) was indexed from its
    // live view — a delta segment has no view to index from.
    if !delta.peers_added.is_empty() || !delta.lgs_added.is_empty() {
        return None;
    }
    if !rel_maps_equal(snap, prev) {
        // An oracle change moved customer cones; replay would classify
        // SA prefixes under the wrong cones.
        return None;
    }
    let survives = snap
        .vantages
        .iter()
        .all(|(s, t)| prev.vantages.get(s).is_some_and(|pt| pt.kind == t.kind));
    survives.then_some(delta)
}

pub(crate) fn encode_delta(
    snap: &Snapshot,
    prev: &Snapshot,
    delta: &OutputDelta,
    interner: &WorldInterner,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &snap.label);

    // Vantages of the predecessor that this snapshot no longer carries.
    let mut dropped: Vec<Asn> = prev
        .vantages
        .keys()
        .filter(|s| !snap.vantages.contains_key(s))
        .map(|&s| interner.resolve_asn(s))
        .collect();
    dropped.sort_unstable();
    put_uvarint(&mut out, dropped.len() as u64);
    for a in dropped {
        put_uvarint(&mut out, a.0 as u64);
    }

    delta.encode(&mut out);

    // Analyses sidecar: the recomputed per-LG results replay cannot
    // derive (it has events, not views). Exactly the `analyses_dirty`
    // Looking-Glass vantages.
    let dirty: Vec<Asn> = delta
        .lgs
        .iter()
        .filter(|(_, vd)| vd.analyses_dirty)
        .map(|(&a, _)| a)
        .collect();
    put_uvarint(&mut out, dirty.len() as u64);
    for asn in dirty {
        let owner = interner
            .lookup_asn(asn)
            .expect("dirty LG vantages are interned");
        let &(compared, typical) = snap
            .typicality
            .get(&owner)
            .expect("dirty LG vantages have typicality");
        put_uvarint(&mut out, asn.0 as u64);
        put_uvarint(&mut out, compared as u64);
        put_uvarint(&mut out, typical as u64);
        let classes = snap
            .community_class
            .get(&owner)
            .expect("dirty LG vantages have community classes");
        let mut entries: Vec<(&AsnSym, &Relationship)> = classes.iter().collect();
        entries.sort_unstable_by_key(|(s, _)| **s);
        put_uvarint(&mut out, entries.len() as u64);
        for (&n, &rel) in entries {
            put_uvarint(&mut out, sym_u(n));
            out.push(rel_to_u8(rel));
        }
    }
    out
}

struct LgPatch {
    typicality: (usize, usize),
    classes: HashMap<AsnSym, Relationship>,
}

pub(crate) struct DeltaPayload {
    pub(crate) label: String,
    dropped: Vec<Asn>,
    pub(crate) delta: OutputDelta,
    sidecar: BTreeMap<Asn, LgPatch>,
}

pub(crate) fn decode_delta(
    raw: &[u8],
    expect_label: &str,
    interner: &WorldInterner,
) -> Result<DeltaPayload, CodecError> {
    let (n_asns, _, _) = interner.sizes();
    let mut r = Reader::new(raw);
    let label_offset = r.position();
    let label = r.str()?.to_string();
    if label != expect_label {
        return Err(CodecError::Invalid {
            offset: label_offset,
            what: "label disagrees with manifest",
        });
    }
    let n = r.ulen()?;
    let mut dropped = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        dropped.push(read_asn(&mut r)?);
    }
    let delta_offset = r.position();
    let delta = OutputDelta::decode(&mut r)?;
    // Replay runs the decoded events through the live patching code,
    // whose interner calls intern-on-miss — so every symbol the events
    // reference must already be in the loaded table, or a corrupt
    // segment would silently grow the interner past the recorded
    // watermarks instead of failing here.
    for vd in delta.collector.values().chain(delta.lgs.values()) {
        let known_route = |route: &bgp_sim::DeltaRoute| {
            interner.lookup_asn(route.next_hop).is_some()
                && route.path.iter().all(|&a| interner.lookup_asn(a).is_some())
        };
        let ok = vd
            .announced
            .iter()
            .chain(&vd.replaced)
            .all(|(p, route)| interner.lookup_prefix(*p).is_some() && known_route(route))
            && vd
                .withdrawn
                .iter()
                .all(|&p| interner.lookup_prefix(p).is_some());
        if !ok {
            return Err(CodecError::Invalid {
                offset: delta_offset,
                what: "delta event symbol missing from symbol table",
            });
        }
    }
    let n = r.ulen()?;
    let mut sidecar = BTreeMap::new();
    for _ in 0..n {
        let asn = read_asn(&mut r)?;
        let compared = r.ulen()?;
        let typical = r.ulen()?;
        let n_classes = r.ulen()?;
        let mut classes = HashMap::with_capacity(n_classes.min(1 << 16));
        for _ in 0..n_classes {
            let neighbor = AsnSym(read_sym(&mut r, n_asns, "community-class symbol")?);
            let offset = r.position();
            let rel = rel_from_u8(r.u8()?, offset)?;
            classes.insert(neighbor, rel);
        }
        sidecar.insert(
            asn,
            LgPatch {
                typicality: (compared, typical),
                classes,
            },
        );
    }
    if !r.is_exhausted() {
        return Err(CodecError::Invalid {
            offset: r.position(),
            what: "trailing bytes after delta segment",
        });
    }
    Ok(DeltaPayload {
        label,
        dropped,
        delta,
        sidecar,
    })
}

/// Rebuilds the relationship oracle a delta run replays under. The
/// snapshot's relationship map stores both directions of every edge, so
/// the graph (and therefore every customer cone) reconstructs exactly.
pub(crate) fn oracle_from_relationships(snap: &Snapshot, interner: &WorldInterner) -> AsGraph {
    let mut g = AsGraph::new();
    for &s in snap.neighbor_counts.keys() {
        g.ensure_as(interner.resolve_asn(s));
    }
    for (&(a, b), &rel) in snap.relationships.iter() {
        let (a, b) = (interner.resolve_asn(a), interner.resolve_asn(b));
        g.ensure_as(a);
        g.ensure_as(b);
        let _ = g.add_edge(a, b, rel);
    }
    g
}

/// Replays a decoded delta segment over the previous snapshot — the
/// load-time twin of `Snapshot::from_output_incremental`, sharing its
/// per-vantage patching code. Generic over [`Interning`] because the
/// cold tier replays chains under a shared engine reference with a
/// read-only [`crate::intern::FrozenInterner`] (safe: `decode_delta`
/// pre-validated every event symbol against the loaded table).
pub(crate) fn replay_delta<I: Interning>(
    id: SnapshotId,
    payload: &DeltaPayload,
    prev: &Snapshot,
    oracle: &AsGraph,
    interner: &mut I,
    cones: &mut HashMap<Asn, CustomerCone>,
) -> Result<Snapshot, CodecError> {
    let mut snap = Snapshot::empty(id, &payload.label);
    snap.relationships = Arc::clone(&prev.relationships);
    snap.neighbor_counts = Arc::clone(&prev.neighbor_counts);

    let mut dropped_syms: HashSet<AsnSym> = HashSet::with_capacity(payload.dropped.len());
    for &a in &payload.dropped {
        let s = interner.lookup_asn(a).ok_or(CodecError::Invalid {
            offset: 0,
            what: "dropped vantage not in symbol table",
        })?;
        if !prev.vantages.contains_key(&s) {
            return Err(CodecError::Invalid {
                offset: 0,
                what: "dropped vantage not in predecessor",
            });
        }
        dropped_syms.insert(s);
    }

    let survivors: Vec<(AsnSym, VantageKind)> = prev
        .vantages
        .iter()
        .filter(|(s, _)| !dropped_syms.contains(s))
        .map(|(&s, t)| (s, t.kind))
        .collect();
    for (owner, kind) in survivors {
        let asn = interner.resolve_asn(owner);
        let vd = match kind {
            VantageKind::LookingGlass => payload.delta.lgs.get(&asn),
            VantageKind::CollectorPeer => payload.delta.collector.get(&asn),
        };
        snap.patch_vantage(prev, asn, vd, oracle, interner, cones, false);
        if kind == VantageKind::LookingGlass {
            if let Some(patch) = payload.sidecar.get(&asn) {
                snap.typicality.insert(owner, patch.typicality);
                snap.community_class
                    .insert(owner, Arc::new(patch.classes.clone()));
            } else {
                if let Some(&t) = prev.typicality.get(&owner) {
                    snap.typicality.insert(owner, t);
                }
                if let Some(c) = prev.community_class.get(&owner) {
                    snap.community_class.insert(owner, Arc::clone(c));
                }
            }
        }
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// save / load
// ---------------------------------------------------------------------------

/// A sibling of `dir` named `<dir>.<tag>-<pid>` — same parent, so a
/// directory rename between the two stays on one filesystem.
fn sibling(dir: &Path, tag: &str) -> PathBuf {
    let mut name = dir
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("archive"));
    name.push(format!(".{tag}-{}", std::process::id()));
    match dir.parent() {
        Some(parent) if dir.file_name().is_some() => parent.join(name),
        _ => PathBuf::from(name),
    }
}

/// Save-time policy knobs (see [`QueryEngine::save_archive_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SaveOptions {
    /// Write a self-contained full segment (a **keyframe**) at least
    /// every `N` snapshots, bounding the delta chain a cold reader
    /// replays to reach any snapshot. `None` keeps the pure
    /// full-vs-delta policy (one keyframe at snapshot 0).
    pub keyframe_every: Option<usize>,
}

/// Serializes `engine` into an archive at `dir` (see
/// [`QueryEngine::save_archive`]).
///
/// The write is staged: every segment and the manifest go into a
/// sibling `<dir>.staging-<pid>` directory first, and only a complete
/// staging directory is swapped into place — a crash or full disk
/// mid-save never destroys an existing archive, and a `force`
/// overwrite replaces the old archive wholesale (no orphaned segment
/// files from a longer predecessor).
pub(crate) fn save(
    engine: &mut QueryEngine,
    dir: &Path,
    force: bool,
    options: SaveOptions,
) -> Result<Manifest, StoreError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let replacing_archive = manifest_path.exists();
    if replacing_archive && !force {
        return Err(StoreError::AlreadyExists {
            path: manifest_path,
        });
    }

    let staging = sibling(dir, "staging");
    let _ = std::fs::remove_dir_all(&staging); // a crashed save's leftovers

    let mut manifest = Manifest::new(engine.n_shards as u32);
    let symbols = encode_symbols(engine);
    manifest.segments.push(write_segment(
        &staging,
        SYMBOLS_FILE,
        SegmentKind::Symbols,
        "",
        &symbols,
    )?);

    // Keyframe policy: snapshot 0 always decodes standalone; after
    // that, force a self-contained full whenever the chain since the
    // last anchor reaches the configured bound.
    let mut last_anchor: Option<usize> = None;
    for (i, snap) in engine.snapshots.iter().enumerate() {
        let snap: &Snapshot = snap;
        let prev: Option<&Snapshot> = (i > 0).then(|| &*engine.snapshots[i - 1]);
        let force_keyframe = match (options.keyframe_every, last_anchor) {
            (Some(k), Some(anchor)) => i - anchor >= k.max(1),
            _ => false,
        };
        let plan = if force_keyframe {
            None
        } else {
            prev.and_then(|p| delta_plan(snap, p))
        };
        let (kind, payload, standalone) = match plan {
            Some(delta) => (
                SegmentKind::Delta,
                encode_delta(
                    snap,
                    prev.expect("delta implies prev"),
                    delta,
                    &engine.interner,
                ),
                false,
            ),
            None => {
                let (payload, standalone) = encode_full(snap, prev, force_keyframe);
                (SegmentKind::Full, payload, standalone)
            }
        };
        if standalone {
            last_anchor = Some(i);
        }
        let file = format!("snap-{i:04}.seg");
        let mut entry = write_segment(&staging, &file, kind, &snap.label, &payload)?;
        if standalone {
            entry.flags |= SEG_FLAG_KEYFRAME;
        }
        manifest.segments.push(entry);
    }

    if !engine.roas.is_empty() {
        let payload = encode_roas(&engine.roas);
        manifest.segments.push(write_segment(
            &staging,
            ROAS_FILE,
            SegmentKind::Roa,
            "",
            &payload,
        )?);
    }

    manifest.write(&staging, true)?;
    swap_into_place(&staging, dir, replacing_archive).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    engine.archive = Some(ArchiveInfo::from_manifest(dir, &manifest));
    Ok(manifest)
}

/// Moves a fully-written staging directory to `dir`. When `dir` holds an
/// archive (`replacing_archive`), the old directory is renamed aside
/// first and removed only after the new one is in place, so every crash
/// window leaves a loadable archive (at `dir` or its `.old-<pid>`
/// sibling). A `dir` that exists but is *not* an archive keeps any
/// unrelated files it holds: the staged files are moved in one by one.
fn swap_into_place(staging: &Path, dir: &Path, replacing_archive: bool) -> std::io::Result<()> {
    if !dir.exists() {
        return std::fs::rename(staging, dir);
    }
    if replacing_archive {
        let old = sibling(dir, "old");
        if old.exists() {
            std::fs::remove_dir_all(&old)?;
        }
        std::fs::rename(dir, &old)?;
        std::fs::rename(staging, dir)?;
        return std::fs::remove_dir_all(&old);
    }
    // An existing non-archive directory (e.g. pre-created, possibly with
    // unrelated content): move the staged files in, replacing per file.
    for entry in std::fs::read_dir(staging)? {
        let entry = entry?;
        std::fs::rename(entry.path(), dir.join(entry.file_name()))?;
    }
    std::fs::remove_dir_all(staging)
}

/// Per-snapshot interner watermarks: (asns, prefixes, communities)
/// interned by the time each snapshot was ingested.
pub(crate) type Watermarks = Vec<(usize, usize, usize)>;

/// The shared prelude of [`load`] and the tiered attach
/// ([`crate::tier::load_tiered`]): validates the manifest's segment
/// shape (exactly one leading symbols segment, at most one ROA segment),
/// builds an empty engine, loads the symbol table, and returns the
/// per-snapshot interner watermarks.
pub(crate) fn load_prelude(
    dir: &Path,
    manifest: &Manifest,
) -> Result<(QueryEngine, Watermarks), StoreError> {
    let symbols_entry = match manifest.segments.first() {
        Some(e) if e.kind == SegmentKind::Symbols => e,
        _ => {
            return Err(StoreError::ManifestCorrupt {
                offset: 0,
                what: "first segment is not the symbol table".into(),
            })
        }
    };
    if manifest.segments[1..]
        .iter()
        .any(|e| e.kind == SegmentKind::Symbols)
    {
        return Err(StoreError::ManifestCorrupt {
            offset: 0,
            what: "more than one symbols segment".into(),
        });
    }
    if manifest
        .segments
        .iter()
        .filter(|e| e.kind == SegmentKind::Roa)
        .count()
        > 1
    {
        return Err(StoreError::ManifestCorrupt {
            offset: 0,
            what: "more than one ROA segment".into(),
        });
    }

    let segref = |index: usize, entry: &SegmentEntry| SegmentRef {
        index,
        file: entry.file.clone(),
    };

    let mut engine = QueryEngine::new(manifest.n_shards.max(1) as usize);
    let raw = read_segment(dir, 0, symbols_entry)?;
    let watermarks = decode_symbols(&raw, &mut engine.interner)
        .map_err(|e| StoreError::corrupt(segref(0, symbols_entry), e))?;

    let n_snapshots = manifest.snapshot_segments().count();
    if watermarks.len() != n_snapshots {
        return Err(StoreError::invalid(
            segref(0, symbols_entry),
            0,
            format!(
                "symbol segment has {} blocks for {} snapshot segments",
                watermarks.len(),
                n_snapshots
            ),
        ));
    }
    Ok((engine, watermarks))
}

/// Loads the ROA segment into `engine`, if the manifest carries one —
/// the other piece [`load`] and the tiered attach share.
pub(crate) fn load_roas(
    dir: &Path,
    manifest: &Manifest,
    engine: &mut QueryEngine,
) -> Result<(), StoreError> {
    if let Some((seg_idx, entry)) = manifest
        .segments
        .iter()
        .enumerate()
        .find(|(_, e)| e.kind == SegmentKind::Roa)
    {
        let segref = SegmentRef {
            index: seg_idx,
            file: entry.file.clone(),
        };
        let raw = read_segment(dir, seg_idx, entry)?;
        let table = decode_roas(&raw).map_err(|e| StoreError::corrupt(segref, e))?;
        engine.set_roas(table);
    }
    Ok(())
}

/// Cold-starts an engine from the archive at `dir` (see
/// [`QueryEngine::load_archive`]).
pub(crate) fn load(dir: &Path) -> Result<QueryEngine, StoreError> {
    let manifest = Manifest::read(dir)?;
    let (mut engine, watermarks) = load_prelude(dir, &manifest)?;

    let segref = |index: usize, entry: &SegmentEntry| SegmentRef {
        index,
        file: entry.file.clone(),
    };
    let snapshot_entries: Vec<(usize, &SegmentEntry)> = manifest.snapshot_segments().collect();

    // Delta-replay state: the oracle graph rebuilt from the predecessor's
    // relationship map, cached while the map stays physically the same.
    let mut oracle: Option<(*const (), AsGraph)> = None;
    let mut cones: HashMap<Asn, CustomerCone> = HashMap::new();

    for (snap_idx, &(seg_idx, entry)) in snapshot_entries.iter().enumerate() {
        let raw = read_segment(dir, seg_idx, entry)?;
        let id = SnapshotId(snap_idx as u32);
        let mut snap = match entry.kind {
            SegmentKind::Full => decode_full(
                &raw,
                id,
                &entry.label,
                engine.snapshots.last().map(|a| &**a),
                &engine.interner,
                engine.n_shards,
            )
            .map_err(|e| StoreError::corrupt(segref(seg_idx, entry), e))?,
            SegmentKind::Delta => {
                let payload = decode_delta(&raw, &entry.label, &engine.interner)
                    .map_err(|e| StoreError::corrupt(segref(seg_idx, entry), e))?;
                let prev: &Snapshot = engine.snapshots.last().ok_or_else(|| {
                    StoreError::invalid(
                        segref(seg_idx, entry),
                        0,
                        "delta segment has no predecessor snapshot",
                    )
                })?;
                let rel_ptr = Arc::as_ptr(&prev.relationships) as *const ();
                if oracle.as_ref().map(|(p, _)| *p) != Some(rel_ptr) {
                    oracle = Some((rel_ptr, oracle_from_relationships(prev, &engine.interner)));
                    cones.clear();
                }
                let graph = &oracle.as_ref().expect("just rebuilt").1;
                let mut snap =
                    replay_delta(id, &payload, prev, graph, &mut engine.interner, &mut cones)
                        .map_err(|e| StoreError::corrupt(segref(seg_idx, entry), e))?;
                snap.provenance = Provenance::Delta(Arc::new(payload.delta));
                snap
            }
            SegmentKind::Symbols | SegmentKind::Roa => {
                unreachable!("snapshot_segments() yields only full and delta segments")
            }
        };
        snap.interned_watermark = watermarks[snap_idx];
        engine.snapshots.push(Arc::new(snap));
    }

    load_roas(dir, &manifest, &mut engine)?;

    engine.archive = Some(ArchiveInfo::from_manifest(dir, &manifest));
    Ok(engine)
}
