//! The observatory's one query protocol: a typed [`Query`] AST paired
//! with a snapshot [`Scope`], a typed [`Response`], and the shared text
//! grammar that the `rpi-queryd` REPL, batch query files, the tests and
//! any future TCP front end all speak.
//!
//! [`parse`] and [`render`] round-trip: `parse(&render(&req)) == Ok(req)`
//! for every representable request, so query logs can be replayed and
//! goldens diffed byte-for-byte. (Two shapes are unrepresentable on the
//! wire: a [`Scope::Label`] containing whitespace — the grammar is line-
//! and word-oriented, so ingest labels must be whitespace-free to be
//! addressable — and a reversed [`Scope::Range`] on anything but `diff`,
//! which the engine rejects anyway.) [`parse_script`] parses a whole
//! query file and reports errors with 1-based line numbers.
//!
//! ## The grammar
//!
//! ```text
//! route <vantage> <prefix> [@scope]        exact best-route lookup
//! resolve <vantage> <prefix> [@scope]      longest-prefix-match lookup
//! sa <vantage> <prefix> [@scope]           Fig. 4 SA status
//! rel <a> <b> [@scope]                     oracle relationship (b is a's …)
//! summary <asn> [@scope]                   per-AS policy digest
//! diff @<from>..<to>                       what changed between snapshots
//! sa-history <vantage> <prefix> [@scope]   SA status across snapshots
//! uptime <vantage> [@scope]                Fig. 7 uptime histogram
//! top-sa <vantage> <k> [@scope]            top-K SA origins
//! persistence <vantage> <prefix> [@scope]  per-prefix persistence class
//! ```
//!
//! A scope is one token: `@latest`, `@3` (snapshot id), `@label:day-07`
//! (or bare `@day-07` when the label is not a number or keyword), `@all`,
//! or `@0..3` (inclusive id range, ascending: a reversed or half-open
//! range like `@7..3` or `@3..` is a grammar error, never a silently
//! empty scope). Point queries default to `@latest`, history queries to
//! `@all`; `diff` needs an explicit range (the legacy `diff 0 2`
//! spelling is accepted and means `diff @0..2`; a *reverse* diff is
//! spelled `diff 2 0`, which is also how [`render`] canonicalizes it).
//!
//! ```
//! use rpi_query::{parse, render, Query, Scope};
//! use bgp_types::Asn;
//!
//! let req = parse("uptime AS64512").unwrap();
//! assert_eq!(req.query, Query::UptimeHistogram { vantage: Asn(64512) });
//! assert_eq!(req.scope, Scope::All); // history queries default to @all
//! assert_eq!(render(&req), "uptime AS64512 @all");
//! assert_eq!(parse(&render(&req)).unwrap(), req);
//! ```

use std::fmt;

use bgp_types::{Asn, Ipv4Prefix, Relationship};
use rpi_core::persistence::{PersistenceClass, UptimeHistogram};
use rpi_sec::{Roa, RovValidity};

use crate::engine::{PolicySummary, RouteAnswer, SaStatus};
use crate::snapshot::SnapshotId;
use crate::SnapshotDiff;

/// Which snapshots a [`Query`] runs against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scope {
    /// The most recently ingested snapshot (`@latest`).
    Latest,
    /// One snapshot by id (`@3`).
    Id(SnapshotId),
    /// One snapshot by its ingest label (`@label:day-07`). Labels with
    /// whitespace cannot be spoken in the word-oriented wire grammar.
    Label(String),
    /// Every ingested snapshot, in id order (`@all`).
    All,
    /// An inclusive id range (`@0..3`). The wire grammar only speaks
    /// ascending ranges; a programmatically built reversed range is
    /// still meaningful for `diff` (from→to in either order, rendered as
    /// the legacy `diff <from> <to>` spelling) and an
    /// [`InvertedRange`](crate::QueryError::InvertedRange) error for
    /// history queries.
    Range(SnapshotId, SnapshotId),
}

/// One question for the observatory, minus its snapshot scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Exact best-route lookup at a vantage.
    Route {
        /// The vantage whose table is consulted.
        vantage: Asn,
        /// The exact table prefix.
        prefix: Ipv4Prefix,
    },
    /// Longest-prefix-match lookup: how would the vantage route traffic
    /// for this (possibly more-specific) prefix?
    Resolve {
        /// The vantage whose table is consulted.
        vantage: Asn,
        /// The destination prefix to resolve.
        prefix: Ipv4Prefix,
    },
    /// Fig. 4 status of a prefix as seen from a vantage.
    SaStatus {
        /// The observing vantage.
        vantage: Asn,
        /// The prefix under question.
        prefix: Ipv4Prefix,
    },
    /// The oracle relationship `b is a's …`.
    Relationship {
        /// The perspective AS.
        a: Asn,
        /// The neighbor.
        b: Asn,
    },
    /// Per-AS policy digest.
    PolicySummary {
        /// The AS to summarize.
        asn: Asn,
    },
    /// What changed between the two snapshots of the request's
    /// [`Scope::Range`].
    Diff,
    /// The prefix's SA status in every scoped snapshot (Fig 6's raw
    /// series, per prefix).
    SaHistory {
        /// The observing vantage.
        vantage: Asn,
        /// The prefix to follow.
        prefix: Ipv4Prefix,
    },
    /// Fig. 7 uptime histogram of the vantage's ever-SA prefixes over
    /// the scoped snapshots.
    UptimeHistogram {
        /// The observing vantage.
        vantage: Asn,
    },
    /// The origins with the most distinct SA prefixes at the vantage
    /// over the scoped snapshots.
    TopKSaOrigins {
        /// The observing vantage.
        vantage: Asn,
        /// How many origins to return.
        k: usize,
    },
    /// How one prefix's SA behaviour persists over the scoped snapshots.
    PersistenceClass {
        /// The observing vantage.
        vantage: Asn,
        /// The prefix to classify.
        prefix: Ipv4Prefix,
    },
    /// RFC 6811 route-origin validation of the vantage's best route for
    /// the prefix against the engine's ROA table.
    Rov {
        /// The vantage whose best route supplies the origin.
        vantage: Asn,
        /// The exact table prefix to validate.
        prefix: Ipv4Prefix,
    },
    /// Origin-hijack / MOAS events across the scoped snapshots: prefixes
    /// picking up an origin outside every owner's customer cone, and
    /// multi-origin conflicts.
    Hijacks,
    /// Valley-free violations visible in the scoped snapshot: routes
    /// whose AS path sends provider- or peer-learned traffic back up.
    Leaks,
}

impl Query {
    /// The grammar verb of this query.
    pub fn verb(&self) -> &'static str {
        match self {
            Query::Route { .. } => "route",
            Query::Resolve { .. } => "resolve",
            Query::SaStatus { .. } => "sa",
            Query::Relationship { .. } => "rel",
            Query::PolicySummary { .. } => "summary",
            Query::Diff => "diff",
            Query::SaHistory { .. } => "sa-history",
            Query::UptimeHistogram { .. } => "uptime",
            Query::TopKSaOrigins { .. } => "top-sa",
            Query::PersistenceClass { .. } => "persistence",
            Query::Rov { .. } => "rov",
            Query::Hijacks => "hijacks",
            Query::Leaks => "leaks",
        }
    }

    /// This verb's index into the per-verb metric families
    /// ([`crate::metrics::VERBS`] — declaration order).
    pub fn verb_index(&self) -> usize {
        match self {
            Query::Route { .. } => 0,
            Query::Resolve { .. } => 1,
            Query::SaStatus { .. } => 2,
            Query::Relationship { .. } => 3,
            Query::PolicySummary { .. } => 4,
            Query::Diff => 5,
            Query::SaHistory { .. } => 6,
            Query::UptimeHistogram { .. } => 7,
            Query::TopKSaOrigins { .. } => 8,
            Query::PersistenceClass { .. } => 9,
            Query::Rov { .. } => 10,
            Query::Hijacks => 11,
            Query::Leaks => 12,
        }
    }

    /// `true` for the multi-snapshot history queries (whose default
    /// scope is `@all`).
    pub fn is_history(&self) -> bool {
        matches!(
            self,
            Query::SaHistory { .. }
                | Query::UptimeHistogram { .. }
                | Query::TopKSaOrigins { .. }
                | Query::PersistenceClass { .. }
                | Query::Hijacks
        )
    }

    /// Pairs the query with a scope.
    pub fn at(self, scope: Scope) -> QueryRequest {
        QueryRequest { query: self, scope }
    }

    /// Pairs the query with its default scope (`@latest` for point
    /// queries, `@all` for history queries).
    pub fn with_default_scope(self) -> QueryRequest {
        let scope = if self.is_history() {
            Scope::All
        } else {
            Scope::Latest
        };
        self.at(scope)
    }
}

/// A [`Query`] plus the [`Scope`] it runs against — the unit the engine
/// executes and the wire grammar encodes, one per line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// The question.
    pub query: Query,
    /// The snapshots it is asked of.
    pub scope: Scope,
}

/// One point of a [`Response::SaHistory`] answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaHistoryPoint {
    /// The snapshot.
    pub snapshot: SnapshotId,
    /// Its ingest label.
    pub label: String,
    /// The prefix's Fig. 4 status there.
    pub status: SaStatus,
}

/// One row of a [`Response::TopSaOrigins`] answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaOriginCount {
    /// The originating customer.
    pub origin: Asn,
    /// Distinct prefixes of that origin that were SA in at least one
    /// scoped snapshot.
    pub prefixes: usize,
}

/// The answer to a `persistence` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistenceAnswer {
    /// Snapshots in scope.
    pub snapshots: usize,
    /// Snapshots in which the prefix was in the vantage's table.
    pub present: usize,
    /// Snapshots in which it was selectively announced.
    pub sa: usize,
    /// The resulting class.
    pub class: PersistenceClass,
}

/// The answer to a `rov` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RovAnswer {
    /// The named vantage has no table in the scoped snapshot.
    UnknownVantage,
    /// The vantage has no best route for the exact prefix — there is no
    /// origin to validate.
    NoRoute,
    /// The route's origin was validated against the ROA table.
    Validated {
        /// The origin AS of the vantage's best route.
        origin: Asn,
        /// Its RFC 6811 validity.
        validity: RovValidity,
        /// The longest covering ROA that decided the verdict (`None` for
        /// [`RovValidity::Unknown`]: nothing covers the prefix).
        covering: Option<Roa>,
    },
}

/// What kind of event a [`HijackEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HijackKind {
    /// A prefix originated by an AS outside every owner's customer cone.
    Origin,
    /// A more-specific of an owned prefix, originated outside the
    /// owners' cones.
    Subprefix,
    /// The same prefix originated by multiple ASes in one snapshot.
    Moas,
}

impl HijackKind {
    /// Stable lowercase name, as printed on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            HijackKind::Origin => "origin-hijack",
            HijackKind::Subprefix => "subprefix-hijack",
            HijackKind::Moas => "moas",
        }
    }
}

/// One row of a [`Response::Hijacks`] answer: the first scoped snapshot
/// in which the suspicious (prefix, origin) pairing appeared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HijackEvent {
    /// The snapshot where the event first appears.
    pub snapshot: SnapshotId,
    /// Its ingest label.
    pub label: String,
    /// What happened.
    pub kind: HijackKind,
    /// The announced prefix.
    pub prefix: Ipv4Prefix,
    /// The suspect origin.
    pub origin: Asn,
    /// The baseline owners of the (covering) prefix, ascending.
    pub owners: Vec<Asn>,
}

/// One row of a [`Response::Leaks`] answer: a stored path that violates
/// the valley-free rule under the relationship oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakEvent {
    /// The vantage whose table holds the leaked route.
    pub vantage: Asn,
    /// The routed prefix.
    pub prefix: Ipv4Prefix,
    /// The AS that forwarded a provider- or peer-learned route upward —
    /// the valley's turning point.
    pub leaker: Asn,
    /// The full speaker-first AS path (vantage included).
    pub path: Vec<Asn>,
}

/// The typed answer to a [`QueryRequest`]; variants mirror [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `route` and `resolve` (`None`: no (covering) route).
    Route(Option<RouteAnswer>),
    /// Answer to `sa`.
    Sa(SaStatus),
    /// Answer to `rel` (`None`: not adjacent in the oracle).
    Relationship(Option<Relationship>),
    /// Answer to `summary` (`None`: AS never seen at ingest time).
    Summary(Option<PolicySummary>),
    /// Answer to `diff`.
    Diff(SnapshotDiff),
    /// Answer to `sa-history`, one point per scoped snapshot.
    SaHistory(Vec<SaHistoryPoint>),
    /// Answer to `uptime` — the same [`UptimeHistogram`] that
    /// [`rpi_core::persistence::uptime_histogram`] computes directly.
    Uptime(UptimeHistogram),
    /// Answer to `top-sa`, descending by prefix count (ties by ASN).
    TopSaOrigins(Vec<SaOriginCount>),
    /// Answer to `persistence`.
    Persistence(PersistenceAnswer),
    /// Answer to `rov`.
    Rov(RovAnswer),
    /// Answer to `hijacks`, ordered by (snapshot, prefix, origin).
    Hijacks(Vec<HijackEvent>),
    /// Answer to `leaks`, ordered by (vantage, prefix, path).
    Leaks(Vec<LeakEvent>),
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The verb is not part of the grammar; [`fmt::Display`] lists the
    /// valid queries.
    UnknownQuery(String),
    /// The verb is known but its operands or scope are malformed.
    Malformed(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnknownQuery(verb) => {
                write!(f, "unknown query '{verb}'; valid queries:\n{GRAMMAR}")
            }
            ParseError::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A [`ParseError`] located in a multi-line query script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong there.
    pub error: ParseError,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for ScriptError {}

/// The grammar table, one query form per line (what `help` prints and
/// unknown-query errors append).
pub const GRAMMAR: &str = "\
route <vantage> <prefix> [@scope]        exact best-route lookup
resolve <vantage> <prefix> [@scope]      longest-prefix-match lookup
sa <vantage> <prefix> [@scope]           Fig. 4 SA status of the prefix
rel <a> <b> [@scope]                     oracle relationship (b is a's ...)
summary <asn> [@scope]                   per-AS policy digest
diff @<from>..<to>                       what changed between snapshots
sa-history <vantage> <prefix> [@scope]   SA status across snapshots
uptime <vantage> [@scope]                Fig. 7 uptime histogram
top-sa <vantage> <k> [@scope]            top-K SA origins
persistence <vantage> <prefix> [@scope]  per-prefix persistence class
rov <vantage> <prefix> [@scope]          RFC 6811 route-origin validation
hijacks [@scope]                         origin-hijack / MOAS events across snapshots
leaks [@scope]                           valley-free violations in one snapshot
scopes: @latest  @<id>  @label:<name>  @all  @<from>..<to>   (point queries default to @latest, history queries to @all)";

fn parse_asn(s: &str) -> Result<Asn, ParseError> {
    let digits = s.strip_prefix("AS").unwrap_or(s);
    digits
        .parse::<u32>()
        .map(Asn)
        .map_err(|_| ParseError::Malformed(format!("bad ASN '{s}'")))
}

fn parse_prefix(s: &str) -> Result<Ipv4Prefix, ParseError> {
    s.parse::<Ipv4Prefix>()
        .map_err(|e| ParseError::Malformed(format!("bad prefix '{s}': {e}")))
}

fn parse_snap(s: &str) -> Result<SnapshotId, ParseError> {
    s.parse::<u32>()
        .map(SnapshotId)
        .map_err(|_| ParseError::Malformed(format!("bad snapshot id '{s}'")))
}

/// Parses one scope token, *without* its leading `@`.
fn parse_scope_body(body: &str) -> Result<Scope, ParseError> {
    if body == "latest" {
        return Ok(Scope::Latest);
    }
    if body == "all" {
        return Ok(Scope::All);
    }
    if let Some(label) = body.strip_prefix("label:") {
        return Ok(Scope::Label(label.to_string()));
    }
    if let Some((from, to)) = body.split_once("..") {
        if from.is_empty() || to.is_empty() {
            return Err(ParseError::Malformed(format!(
                "empty scope range '@{body}': both endpoints are required (@<from>..<to>)"
            )));
        }
        let from = parse_snap(from)
            .map_err(|_| ParseError::Malformed(format!("bad scope range '@{body}'")))?;
        let to = parse_snap(to)
            .map_err(|_| ParseError::Malformed(format!("bad scope range '@{body}'")))?;
        if from > to {
            return Err(ParseError::Malformed(format!(
                "scope range '@{body}' runs backwards: use '@{}..{}' (a reverse diff is spelled 'diff {} {}')",
                to.0, from.0, from.0, to.0
            )));
        }
        return Ok(Scope::Range(from, to));
    }
    if body.bytes().all(|b| b.is_ascii_digit()) && !body.is_empty() {
        return Ok(Scope::Id(parse_snap(body)?));
    }
    if body.is_empty() {
        return Err(ParseError::Malformed("empty scope '@'".into()));
    }
    // Anything else is a bare label (`@day-07`).
    Ok(Scope::Label(body.to_string()))
}

/// Renders a scope as its canonical token.
pub fn render_scope(scope: &Scope) -> String {
    match scope {
        Scope::Latest => "@latest".into(),
        Scope::Id(id) => format!("@{}", id.0),
        Scope::Label(l) => format!("@label:{l}"),
        Scope::All => "@all".into(),
        Scope::Range(a, b) => format!("@{}..{}", a.0, b.0),
    }
}

/// Parses one query line into a request. Leading/trailing whitespace is
/// ignored; the line must not be empty or a `#` comment (callers skip
/// those — [`parse_script`] does).
pub fn parse(line: &str) -> Result<QueryRequest, ParseError> {
    let mut words: Vec<&str> = line.split_whitespace().collect();
    let scope = match words.last() {
        Some(last) if last.starts_with('@') => {
            let s = parse_scope_body(&last[1..])?;
            words.pop();
            Some(s)
        }
        _ => None,
    };
    let Some((&verb, args)) = words.split_first() else {
        return Err(ParseError::Malformed("empty query".into()));
    };

    let wrong_arity = |want: &str| {
        ParseError::Malformed(format!(
            "'{verb}' wants {want}, got {} operand{}",
            args.len(),
            if args.len() == 1 { "" } else { "s" }
        ))
    };

    let query = match verb {
        "route" | "resolve" | "sa" | "sa-history" | "persistence" | "rov" => {
            let [v, p] = args else {
                return Err(wrong_arity("<vantage> <prefix>"));
            };
            let vantage = parse_asn(v)?;
            let prefix = parse_prefix(p)?;
            match verb {
                "route" => Query::Route { vantage, prefix },
                "resolve" => Query::Resolve { vantage, prefix },
                "sa" => Query::SaStatus { vantage, prefix },
                "sa-history" => Query::SaHistory { vantage, prefix },
                "rov" => Query::Rov { vantage, prefix },
                _ => Query::PersistenceClass { vantage, prefix },
            }
        }
        "hijacks" | "leaks" => {
            let [] = args else {
                return Err(wrong_arity("no operands (only an optional @scope)"));
            };
            if verb == "hijacks" {
                Query::Hijacks
            } else {
                Query::Leaks
            }
        }
        "rel" => {
            let [a, b] = args else {
                return Err(wrong_arity("<a> <b>"));
            };
            Query::Relationship {
                a: parse_asn(a)?,
                b: parse_asn(b)?,
            }
        }
        "summary" => {
            let [a] = args else {
                return Err(wrong_arity("<asn>"));
            };
            Query::PolicySummary { asn: parse_asn(a)? }
        }
        "diff" => match (args, &scope) {
            // Legacy spelling: `diff 0 2` ≡ `diff @0..2`.
            ([from, to], None) => {
                let range = Scope::Range(parse_snap(from)?, parse_snap(to)?);
                return Ok(Query::Diff.at(range));
            }
            ([], Some(_)) => Query::Diff,
            _ => {
                return Err(ParseError::Malformed(
                    "'diff' wants a snapshot range: diff @<from>..<to> (or: diff <from> <to>)"
                        .into(),
                ))
            }
        },
        "uptime" => {
            let [v] = args else {
                return Err(wrong_arity("<vantage>"));
            };
            Query::UptimeHistogram {
                vantage: parse_asn(v)?,
            }
        }
        "top-sa" => {
            let [v, k] = args else {
                return Err(wrong_arity("<vantage> <k>"));
            };
            let k: usize = k
                .parse()
                .map_err(|_| ParseError::Malformed(format!("top-sa wants a count, got '{k}'")))?;
            Query::TopKSaOrigins {
                vantage: parse_asn(v)?,
                k,
            }
        }
        other => return Err(ParseError::UnknownQuery(other.to_string())),
    };

    Ok(match scope {
        Some(scope) => query.at(scope),
        None => query.with_default_scope(),
    })
}

/// A session control verb — not a query, but part of the wire grammar:
/// control lines steer the connection (or REPL session) itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// `ping` — liveness probe; the peer answers `pong`.
    Ping,
    /// `quit` (or `exit`) — end this session/connection. Over TCP the
    /// server flushes pending responses and closes the connection.
    Quit,
    /// `shutdown` — stop the whole server (SIGINT-free shutdown): the
    /// listener closes, every connection is flushed and closed, and the
    /// serve loop returns its final stats snapshot. In the stdin REPL
    /// this is equivalent to `quit`.
    Shutdown,
}

/// Recognizes a control verb. Controls are whole lines, not prefixes:
/// `ping extra` is *not* a control (it falls through to query parsing
/// and fails there, like any other malformed line).
pub fn parse_control(line: &str) -> Option<Control> {
    match line.trim() {
        "ping" => Some(Control::Ping),
        "quit" | "exit" => Some(Control::Quit),
        "shutdown" => Some(Control::Shutdown),
        _ => None,
    }
}

/// One complete frame extracted from a connection's byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (terminator stripped, `\r\n` tolerated), with its
    /// 1-based line number within the stream.
    Line {
        /// 1-based position of this line in the connection's stream.
        line: usize,
        /// The line text, without its terminator.
        text: String,
    },
    /// A line that exceeded the framer's cap before its newline arrived.
    /// The rest of the oversized line is discarded up to the next
    /// terminator; the connection itself stays usable.
    Oversized {
        /// 1-based position of the oversized line.
        line: usize,
        /// How many bytes had accumulated when the cap tripped (the line
        /// was at least this long).
        length: usize,
    },
}

/// Reassembles newline-delimited frames from an arbitrarily-chunked byte
/// stream — the framing layer under the TCP front end. A query split
/// across two (or ten) reads comes out as one [`Frame::Line`]; a line
/// longer than the cap comes out as one [`Frame::Oversized`] and is then
/// skipped to its terminator instead of growing the buffer without
/// bound.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    max_line: usize,
    discarding: bool,
    next_line: usize,
}

impl LineFramer {
    /// A framer refusing to buffer more than `max_line` bytes for any
    /// single unterminated line.
    pub fn new(max_line: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            max_line: max_line.max(1),
            discarding: false,
            next_line: 1,
        }
    }

    /// Bytes currently buffered for a not-yet-terminated line (bounded
    /// by the cap).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Flushes the buffered unterminated tail as one final frame — what
    /// EOF means for a line stream (`str::lines` yields a final line
    /// without its `\n`; a TCP session that half-closes after an
    /// unterminated query must get the same answer the stdin path would
    /// give). Returns `None` when nothing is buffered or the tail is the
    /// discarded remainder of an oversized line (already reported).
    pub fn finish(&mut self) -> Option<Frame> {
        if self.discarding {
            self.discarding = false;
            return None;
        }
        if self.buf.is_empty() {
            return None;
        }
        let line = std::mem::take(&mut self.buf);
        let frame = Frame::Line {
            line: self.next_line,
            text: String::from_utf8_lossy(&line).into_owned(),
        };
        self.next_line += 1;
        Some(frame)
    }

    /// Feeds one read's worth of bytes, returning every frame it
    /// completes. Non-UTF-8 lines are lossily decoded (they fail query
    /// parsing downstream like any other garbage).
    pub fn push(&mut self, bytes: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        for &b in bytes {
            if self.discarding {
                if b == b'\n' {
                    self.discarding = false;
                }
                continue;
            }
            if b == b'\n' {
                let mut line = std::mem::take(&mut self.buf);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                out.push(Frame::Line {
                    line: self.next_line,
                    text: String::from_utf8_lossy(&line).into_owned(),
                });
                self.next_line += 1;
                continue;
            }
            self.buf.push(b);
            // One byte of grace for a trailing '\r': a line of exactly
            // `max_line` bytes must be accepted from CRLF clients too
            // (the '\r' is stripped at the terminator, so it never
            // counts toward the line's length).
            let over = self.buf.len() > self.max_line + 1
                || (self.buf.len() > self.max_line && b != b'\r');
            if over {
                out.push(Frame::Oversized {
                    line: self.next_line,
                    length: self.buf.len(),
                });
                self.next_line += 1;
                self.buf.clear();
                self.discarding = true;
            }
        }
        out
    }
}

/// Parses a whole query script: blank lines and `#` comments are
/// skipped, every other line must be a grammar query. Returns the
/// requests with their 1-based line numbers, or the first error located
/// by line.
pub fn parse_script(text: &str) -> Result<Vec<(usize, QueryRequest)>, ScriptError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse(trimmed) {
            Ok(req) => out.push((i + 1, req)),
            Err(error) => return Err(ScriptError { line: i + 1, error }),
        }
    }
    Ok(out)
}

/// Renders a request as its canonical grammar line (scope always
/// explicit). Round-trips through [`parse`].
pub fn render(req: &QueryRequest) -> String {
    let scope = render_scope(&req.scope);
    match &req.query {
        Query::Route { vantage, prefix } => format!("route {vantage} {prefix} {scope}"),
        Query::Resolve { vantage, prefix } => format!("resolve {vantage} {prefix} {scope}"),
        Query::SaStatus { vantage, prefix } => format!("sa {vantage} {prefix} {scope}"),
        Query::Relationship { a, b } => format!("rel {a} {b} {scope}"),
        Query::PolicySummary { asn } => format!("summary {asn} {scope}"),
        // A reverse diff (meaningful: undo-reading a churn report) cannot
        // be spoken as a scope token — `@3..1` is a grammar error — so its
        // canonical wire form is the two-operand spelling.
        Query::Diff => match &req.scope {
            Scope::Range(a, b) if a > b => format!("diff {} {}", a.0, b.0),
            _ => format!("diff {scope}"),
        },
        Query::SaHistory { vantage, prefix } => format!("sa-history {vantage} {prefix} {scope}"),
        Query::UptimeHistogram { vantage } => format!("uptime {vantage} {scope}"),
        Query::TopKSaOrigins { vantage, k } => format!("top-sa {vantage} {k} {scope}"),
        Query::PersistenceClass { vantage, prefix } => {
            format!("persistence {vantage} {prefix} {scope}")
        }
        Query::Rov { vantage, prefix } => format!("rov {vantage} {prefix} {scope}"),
        Query::Hijacks => format!("hijacks {scope}"),
        Query::Leaks => format!("leaks {scope}"),
    }
}

/// Describes one SA status. `scope` is echoed when the status stands
/// alone (the `sa` answer); `sa-history` points pass `None` because each
/// line already names its snapshot.
fn describe_sa(vantage: Asn, prefix: Ipv4Prefix, scope: Option<&str>, status: &SaStatus) -> String {
    let tail = scope.map(|s| format!(" {s}")).unwrap_or_default();
    match status {
        SaStatus::UnknownVantage => format!("{vantage} is not a vantage{tail}"),
        SaStatus::NotInTable => format!("{prefix} not in {vantage}'s table{tail}"),
        SaStatus::NotCustomerRoute => {
            format!("{prefix} at {vantage}{tail}: origin outside customer cone")
        }
        SaStatus::CustomerExported { origin } => {
            format!("{prefix} at {vantage}{tail}: exported normally by customer {origin}")
        }
        SaStatus::SelectivelyAnnounced { origin } => {
            format!("{prefix} at {vantage}{tail}: SELECTIVELY ANNOUNCED by {origin}")
        }
    }
}

fn path_words(path: &[Asn]) -> String {
    path.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a response for its request as stable, line-oriented text —
/// what `rpi-queryd` prints and the CI golden smoke diffs.
pub fn render_response(req: &QueryRequest, resp: &Response) -> String {
    let scope = render_scope(&req.scope);
    match (&req.query, resp) {
        (Query::Route { vantage, prefix }, Response::Route(ans)) => match ans {
            Some(r) => format!(
                "{prefix} at {vantage} {scope}: via {} path {}",
                r.next_hop,
                path_words(&r.path)
            ),
            None => format!("{prefix} at {vantage} {scope}: no route"),
        },
        (Query::Resolve { vantage, prefix }, Response::Route(ans)) => match ans {
            Some(r) => format!(
                "{prefix} at {vantage} {scope}: matched {} via {} (origin {})",
                r.prefix,
                r.next_hop,
                r.origin()
            ),
            None => format!("{prefix} at {vantage} {scope}: no covering route"),
        },
        (Query::SaStatus { vantage, prefix }, Response::Sa(status)) => {
            describe_sa(*vantage, *prefix, Some(&scope), status)
        }
        (Query::Relationship { a, b }, Response::Relationship(rel)) => match rel {
            Some(r) => format!("{b} is {a}'s {r:?} {scope}"),
            None => format!("{a} and {b} are not adjacent in the oracle {scope}"),
        },
        (Query::PolicySummary { asn }, Response::Summary(s)) => match s {
            Some(s) => {
                let (prov, cust, peer, sib) = s.neighbor_counts;
                let typicality = s
                    .typicality_percent()
                    .map(|p| format!("{p:.1}%"))
                    .unwrap_or_else(|| "n/a".into());
                format!(
                    "{asn} {scope}: {} routes, {} customer prefixes, {} SA ({:.1}%), \
                     typicality {typicality}, {} tagged neighbors, \
                     neighbors {prov} providers / {cust} customers / {peer} peers / {sib} siblings",
                    s.routes,
                    s.customer_prefixes,
                    s.sa_count,
                    s.sa_percent(),
                    s.tagged_neighbors,
                )
            }
            None => format!("{asn} {scope}: unknown AS"),
        },
        (Query::Diff, Response::Diff(d)) => format!(
            "{} -> {}: {} new SA, {} gone SA, {} relationship flips, {} churned routes",
            d.from_label,
            d.to_label,
            d.new_sa.len(),
            d.gone_sa.len(),
            d.flips.len(),
            d.churned_routes()
        ),
        (Query::SaHistory { vantage, prefix }, Response::SaHistory(points)) => {
            let mut out = format!(
                "sa-history {prefix} at {vantage} {scope} ({} snapshots):",
                points.len()
            );
            for p in points {
                out.push_str(&format!(
                    "\n  {} {}: {}",
                    p.snapshot.0,
                    p.label,
                    describe_sa(*vantage, *prefix, None, &p.status)
                ));
            }
            out
        }
        (Query::UptimeHistogram { vantage }, Response::Uptime(h)) => {
            let remaining: usize = h.remaining.values().sum();
            let shifted: usize = h.shifted.values().sum();
            let mut out = format!(
                "uptime {vantage} {scope}: {} ever-SA prefixes, {remaining} remaining / {shifted} shifted ({:.1}% shifted)",
                h.total(),
                100.0 * h.shifted_fraction(),
            );
            for (&u, &n) in &h.remaining {
                out.push_str(&format!("\n  remaining, uptime {u}: {n}"));
            }
            for (&u, &n) in &h.shifted {
                out.push_str(&format!("\n  shifted, uptime {u}: {n}"));
            }
            out
        }
        (Query::TopKSaOrigins { vantage, k }, Response::TopSaOrigins(rows)) => {
            let mut out = format!("top-sa {vantage} {k} {scope}:");
            if rows.is_empty() {
                out.push_str(" no SA origins");
            }
            for (i, row) in rows.iter().enumerate() {
                out.push_str(&format!(
                    "\n  {}. {}: {} SA prefix{}",
                    i + 1,
                    row.origin,
                    row.prefixes,
                    if row.prefixes == 1 { "" } else { "es" }
                ));
            }
            out
        }
        (Query::PersistenceClass { vantage, prefix }, Response::Persistence(p)) => format!(
            "persistence {prefix} at {vantage} {scope}: present {}/{}, SA {} -> {}",
            p.present,
            p.snapshots,
            p.sa,
            p.class.describe()
        ),
        (Query::Rov { vantage, prefix }, Response::Rov(ans)) => match ans {
            RovAnswer::UnknownVantage => {
                format!("rov {prefix} at {vantage} {scope}: {vantage} is not a vantage")
            }
            RovAnswer::NoRoute => {
                format!("rov {prefix} at {vantage} {scope}: no route, nothing to validate")
            }
            RovAnswer::Validated {
                origin,
                validity,
                covering,
            } => {
                let roa = match covering {
                    Some(r) => format!(" (covering ROA {r})"),
                    None => " (no covering ROA)".to_string(),
                };
                format!(
                    "rov {prefix} at {vantage} {scope}: origin {origin} {}{roa}",
                    validity.name()
                )
            }
        },
        (Query::Hijacks, Response::Hijacks(events)) => {
            let mut out = format!(
                "hijacks {scope}: {} event{}",
                events.len(),
                if events.len() == 1 { "" } else { "s" }
            );
            for e in events {
                let owners = e
                    .owners
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!(
                    "\n  {} {}: {} {} by {} (owners {})",
                    e.snapshot.0,
                    e.label,
                    e.kind.name(),
                    e.prefix,
                    e.origin,
                    if owners.is_empty() {
                        "none".into()
                    } else {
                        owners
                    }
                ));
            }
            out
        }
        (Query::Leaks, Response::Leaks(events)) => {
            let mut out = format!(
                "leaks {scope}: {} leaked route{}",
                events.len(),
                if events.len() == 1 { "" } else { "s" }
            );
            for e in events {
                out.push_str(&format!(
                    "\n  {} at {}: leaked by {} path {}",
                    e.prefix,
                    e.vantage,
                    e.leaker,
                    path_words(&e.path)
                ));
            }
            out
        }
        // A response that does not match its request can only come from a
        // caller pairing the wrong values; show both rather than guess.
        (_, resp) => format!("{resp:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_legacy_diff_spelling() {
        assert_eq!(parse("route AS1 10.0.0.0/8").unwrap().scope, Scope::Latest);
        assert_eq!(parse("uptime AS1").unwrap().scope, Scope::All);
        assert_eq!(
            parse("diff 0 2").unwrap(),
            Query::Diff.at(Scope::Range(SnapshotId(0), SnapshotId(2)))
        );
        assert_eq!(parse("diff 0 2"), parse("diff @0..2"));
        assert!(parse("diff").is_err());
    }

    #[test]
    fn scope_tokens_parse() {
        assert_eq!(
            parse("sa AS1 1.0.0.0/8 @latest").unwrap().scope,
            Scope::Latest
        );
        assert_eq!(
            parse("sa AS1 1.0.0.0/8 @7").unwrap().scope,
            Scope::Id(SnapshotId(7))
        );
        assert_eq!(
            parse("sa AS1 1.0.0.0/8 @day-07").unwrap().scope,
            Scope::Label("day-07".into())
        );
        assert_eq!(
            parse("sa AS1 1.0.0.0/8 @label:day-07").unwrap().scope,
            Scope::Label("day-07".into())
        );
        assert_eq!(
            parse("sa-history AS1 1.0.0.0/8 @all").unwrap().scope,
            Scope::All
        );
        assert!(parse("sa AS1 1.0.0.0/8 @").is_err());
        assert!(parse("sa AS1 1.0.0.0/8 @3..x").is_err());
    }

    #[test]
    fn reversed_and_empty_ranges_are_grammar_errors() {
        // Backwards ranges must fail loudly — in both query classes —
        // instead of resolving to an empty scope.
        for line in [
            "sa-history AS1 1.0.0.0/8 @7..3",
            "uptime AS1 @7..3",
            "sa AS1 1.0.0.0/8 @7..3",
            "diff @7..3",
        ] {
            let err = parse(line).unwrap_err();
            assert!(
                err.to_string().contains("runs backwards"),
                "'{line}' → {err}"
            );
            assert!(
                err.to_string().contains("@3..7"),
                "the error must name the fix: {err}"
            );
        }
        // Half-open / empty forms are rejected with their own message.
        for line in ["uptime AS1 @3..", "uptime AS1 @..3", "uptime AS1 @.."] {
            let err = parse(line).unwrap_err();
            assert!(
                err.to_string().contains("empty scope range"),
                "'{line}' → {err}"
            );
        }
        // The ascending forms all still parse.
        assert_eq!(
            parse("uptime AS1 @3..7").unwrap().scope,
            Scope::Range(SnapshotId(3), SnapshotId(7))
        );
        assert_eq!(
            parse("uptime AS1 @3..3").unwrap().scope,
            Scope::Range(SnapshotId(3), SnapshotId(3))
        );
    }

    #[test]
    fn reverse_diffs_speak_the_legacy_spelling() {
        // Programmatic reverse diffs stay wire-representable: render
        // falls back to the two-operand form, which parses back exactly.
        let req = Query::Diff.at(Scope::Range(SnapshotId(3), SnapshotId(1)));
        assert_eq!(render(&req), "diff 3 1");
        assert_eq!(parse("diff 3 1").unwrap(), req);
        assert_eq!(parse(&render(&req)).unwrap(), req);
        // Forward diffs keep the scope-token canonical form.
        let fwd = Query::Diff.at(Scope::Range(SnapshotId(1), SnapshotId(3)));
        assert_eq!(render(&fwd), "diff @1..3");
    }

    #[test]
    fn unknown_verbs_list_the_grammar() {
        let err = parse("frobnicate AS1").unwrap_err();
        assert_eq!(err, ParseError::UnknownQuery("frobnicate".into()));
        assert!(err.to_string().contains("route <vantage> <prefix>"));
    }

    #[test]
    fn control_verbs_are_whole_lines() {
        assert_eq!(parse_control("ping"), Some(Control::Ping));
        assert_eq!(parse_control("  quit "), Some(Control::Quit));
        assert_eq!(parse_control("exit"), Some(Control::Quit));
        assert_eq!(parse_control("shutdown"), Some(Control::Shutdown));
        assert_eq!(parse_control("ping now"), None);
        assert_eq!(parse_control("route AS1 1.0.0.0/8"), None);
    }

    #[test]
    fn framer_reassembles_split_frames() {
        let mut f = LineFramer::new(64);
        assert!(f.push(b"route AS1 4.").is_empty());
        assert!(f.push(b"0.0.0/13").is_empty());
        let frames = f.push(b"\nsa AS1 2.0.0.0/8\r\npart");
        assert_eq!(
            frames,
            vec![
                Frame::Line {
                    line: 1,
                    text: "route AS1 4.0.0.0/13".into()
                },
                Frame::Line {
                    line: 2,
                    text: "sa AS1 2.0.0.0/8".into()
                },
            ]
        );
        assert_eq!(f.buffered(), 4);
        assert_eq!(
            f.push(b"ial\n"),
            vec![Frame::Line {
                line: 3,
                text: "partial".into()
            }]
        );
    }

    #[test]
    fn framer_finish_flushes_the_unterminated_tail() {
        let mut f = LineFramer::new(64);
        assert!(f.push(b"route AS1 4.0.0.0/13").is_empty());
        assert_eq!(
            f.finish(),
            Some(Frame::Line {
                line: 1,
                text: "route AS1 4.0.0.0/13".into()
            })
        );
        assert_eq!(f.finish(), None, "the tail flushes exactly once");
        // The discarded remainder of an oversized line is not a frame —
        // it was already reported when the cap tripped.
        let mut f = LineFramer::new(4);
        assert_eq!(
            f.push(b"abcdefgh"),
            vec![Frame::Oversized { line: 1, length: 5 }]
        );
        assert_eq!(f.finish(), None);
    }

    #[test]
    fn framer_caps_oversized_lines_without_losing_the_stream() {
        let mut f = LineFramer::new(8);
        let frames = f.push(b"0123456789abcdef more garbage\nping\n");
        assert_eq!(
            frames,
            vec![
                Frame::Oversized { line: 1, length: 9 },
                Frame::Line {
                    line: 2,
                    text: "ping".into()
                },
            ]
        );
        // The discarded tail never accumulated.
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn framer_cap_treats_lf_and_crlf_clients_alike() {
        // An exactly-at-cap line is fine with either terminator: the
        // '\r' is stripped, so it must not count toward the cap.
        for terminator in ["\n", "\r\n"] {
            let mut f = LineFramer::new(8);
            assert_eq!(
                f.push(format!("01234567{terminator}").as_bytes()),
                vec![Frame::Line {
                    line: 1,
                    text: "01234567".into()
                }],
                "terminator {terminator:?}"
            );
        }
        // One byte over the cap trips it for both, and a '\r' that is
        // *not* a terminator gets no grace.
        let mut f = LineFramer::new(8);
        assert_eq!(
            f.push(b"012345678\n"),
            vec![Frame::Oversized { line: 1, length: 9 }]
        );
        let mut f = LineFramer::new(8);
        assert_eq!(
            f.push(b"01234567\rX\n"),
            vec![Frame::Oversized {
                line: 1,
                length: 10
            }]
        );
    }

    #[test]
    fn scripts_locate_errors_by_line() {
        let err = parse_script("# header\nroute AS1 10.0.0.0/8\n\nbogus AS1\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(matches!(err.error, ParseError::UnknownQuery(_)));
        let ok = parse_script("# only comments\n\n").unwrap();
        assert!(ok.is_empty());
    }
}
