//! `rpi-queryd` — the observatory as a command-line daemon.
//!
//! Loads an [`Experiment`]-generated world (optionally a churn series of
//! snapshots), ingests it into a [`QueryEngine`], and answers queries from
//! stdin or a file. `--bench` instead runs the throughput report: single
//! route queries per second, and batched throughput across shard counts.
//!
//! ```text
//! rpi-queryd [--size tiny|small|paper] [--seed N] [--snapshots N]
//!            [--shards N] [--queries FILE] [--bench]
//! ```

use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::time::Instant;

use bgp_sim::churn::simulate_series;
use bgp_sim::ChurnConfig;
use bgp_types::{Asn, Ipv4Prefix};
use net_topology::InternetSize;
use rpi_core::Experiment;
use rpi_query::{QueryEngine, SaStatus, SnapshotId, VantageKind};

struct Options {
    size: InternetSize,
    seed: u64,
    snapshots: usize,
    shards: usize,
    queries: Option<String>,
    bench: bool,
}

fn usage() -> &'static str {
    "usage: rpi-queryd [--size tiny|small|paper|large] [--seed N] \
     [--snapshots N] [--shards N] [--queries FILE] [--bench]"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        size: InternetSize::Small,
        seed: 2003,
        snapshots: 1,
        shards: 8,
        queries: None,
        bench: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--size" => opts.size = value("--size")?.parse()?,
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("--seed wants an unsigned integer, got '{v}'"))?;
            }
            "--snapshots" => {
                let v = value("--snapshots")?;
                opts.snapshots = v
                    .parse()
                    .map_err(|_| format!("--snapshots wants a count, got '{v}'"))?;
                if opts.snapshots == 0 {
                    return Err("--snapshots must be at least 1".into());
                }
            }
            "--shards" => {
                let v = value("--shards")?;
                opts.shards = v
                    .parse()
                    .map_err(|_| format!("--shards wants a count, got '{v}'"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--queries" => opts.queries = Some(value("--queries")?),
            "--bench" => opts.bench = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rpi-queryd: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "building {:?} world (seed {}, {} snapshot{}) …",
        opts.size,
        opts.seed,
        opts.snapshots,
        if opts.snapshots == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    let exp = Experiment::standard(opts.size, opts.seed);
    let mut engine = QueryEngine::new(opts.shards);
    if opts.snapshots > 1 {
        let cfg = ChurnConfig {
            steps: opts.snapshots,
            ..ChurnConfig::daily(opts.seed ^ 0xC0FFEE)
        };
        let series = simulate_series(&exp.graph, &exp.truth, &exp.spec, &cfg);
        engine.ingest_series(&series, &exp.inferred_graph);
    } else {
        engine.ingest_experiment(&exp, "t0");
    }
    let (asns, prefixes, communities) = engine.interned_sizes();
    eprintln!(
        "ready in {:.2?}: {} snapshots, {} shards, interned {asns} ASNs / {prefixes} prefixes / {communities} communities",
        t0.elapsed(),
        engine.snapshot_count(),
        engine.shard_count(),
    );

    if opts.bench {
        bench(&exp, &engine, opts.shards);
        return ExitCode::SUCCESS;
    }

    match opts.queries {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    run_line(&engine, line);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rpi-queryd: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            let stdin = std::io::stdin();
            print!("> ");
            let _ = std::io::stdout().flush();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if !run_line(&engine, &line) {
                    break;
                }
                print!("> ");
                let _ = std::io::stdout().flush();
            }
            ExitCode::SUCCESS
        }
    }
}

fn parse_asn(s: &str) -> Result<Asn, String> {
    let digits = s.strip_prefix("AS").unwrap_or(s);
    digits
        .parse::<u32>()
        .map(Asn)
        .map_err(|_| format!("bad ASN '{s}'"))
}

fn parse_prefix(s: &str) -> Result<Ipv4Prefix, String> {
    s.parse::<Ipv4Prefix>()
        .map_err(|e| format!("bad prefix '{s}': {e}"))
}

fn parse_snap(s: &str) -> Result<SnapshotId, String> {
    s.parse::<u32>()
        .map(SnapshotId)
        .map_err(|_| format!("bad snapshot id '{s}'"))
}

/// Executes one query line. Returns `false` on `quit`.
fn run_line(engine: &QueryEngine, line: &str) -> bool {
    if line.trim_start().starts_with('#') {
        return true;
    }
    let words: Vec<&str> = line.split_whitespace().collect();
    let outcome = match words.as_slice() {
        [] => Ok(String::new()),
        ["quit"] | ["exit"] => return false,
        ["help"] => Ok([
            "route <vantage> <prefix> [snapshot]   exact best-route lookup",
            "resolve <vantage> <prefix>            longest-prefix-match lookup",
            "sa <vantage> <prefix>                 Fig. 4 status of the prefix",
            "rel <a> <b>                           oracle relationship (b is a's …)",
            "summary <asn>                         per-AS policy digest",
            "diff <from> <to>                      what changed between snapshots",
            "snapshots                             list snapshot labels",
            "vantages                              list vantages of the latest snapshot",
            "quit                                  leave",
        ]
        .join("\n")),
        ["snapshots"] => Ok(engine
            .labels()
            .enumerate()
            .map(|(i, l)| format!("{i}: {l}"))
            .collect::<Vec<_>>()
            .join("\n")),
        ["vantages"] => Ok(engine
            .vantages()
            .into_iter()
            .map(|(a, k)| {
                let kind = match k {
                    VantageKind::LookingGlass => "looking-glass",
                    VantageKind::CollectorPeer => "collector-peer",
                };
                format!("{a} ({kind})")
            })
            .collect::<Vec<_>>()
            .join("\n")),
        ["route", v, p] => parse_asn(v)
            .and_then(|v| parse_prefix(p).map(|p| (v, p)))
            .map(|(v, p)| match engine.route_at(v, p) {
                Some(r) => format!(
                    "{p} at {v}: via {} path {}",
                    r.next_hop,
                    r.path
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
                None => format!("{p} at {v}: no route"),
            }),
        ["route", v, p, s] => parse_asn(v)
            .and_then(|v| parse_prefix(p).map(|p| (v, p)))
            .and_then(|(v, p)| parse_snap(s).map(|s| (v, p, s)))
            .map(|(v, p, s)| match engine.route_at_in(s, v, p) {
                Some(r) => format!("{p} at {v} in snapshot {}: via {}", s.0, r.next_hop),
                None => format!("{p} at {v} in snapshot {}: no route", s.0),
            }),
        ["resolve", v, p] => parse_asn(v)
            .and_then(|v| parse_prefix(p).map(|p| (v, p)))
            .map(|(v, p)| match engine.resolve(v, p) {
                Some(r) => format!(
                    "{p} at {v}: matched {} via {} (origin {})",
                    r.prefix,
                    r.next_hop,
                    r.origin()
                ),
                None => format!("{p} at {v}: no covering route"),
            }),
        ["sa", v, p] => parse_asn(v)
            .and_then(|v| parse_prefix(p).map(|p| (v, p)))
            .map(|(v, p)| match engine.sa_status(v, p) {
                SaStatus::UnknownVantage => format!("{v} is not a vantage"),
                SaStatus::NotInTable => format!("{p} not in {v}'s table"),
                SaStatus::NotCustomerRoute => format!("{p} at {v}: origin outside customer cone"),
                SaStatus::CustomerExported { origin } => {
                    format!("{p} at {v}: exported normally by customer {origin}")
                }
                SaStatus::SelectivelyAnnounced { origin } => {
                    format!("{p} at {v}: SELECTIVELY ANNOUNCED by {origin}")
                }
            }),
        ["rel", a, b] => parse_asn(a)
            .and_then(|a| parse_asn(b).map(|b| (a, b)))
            .map(|(a, b)| match engine.relationship(a, b) {
                Some(r) => format!("{b} is {a}'s {r:?}"),
                None => format!("{a} and {b} are not adjacent in the oracle"),
            }),
        ["summary", a] => parse_asn(a).map(|a| match engine.policy_summary(a) {
            Some(s) => {
                let (prov, cust, peer, sib) = s.neighbor_counts;
                let typicality = s
                    .typicality_percent()
                    .map(|p| format!("{p:.1}%"))
                    .unwrap_or_else(|| "n/a".into());
                format!(
                    "{a}: {} routes, {} customer prefixes, {} SA ({:.1}%), \
                     typicality {typicality}, {} tagged neighbors, \
                     neighbors {prov} providers / {cust} customers / {peer} peers / {sib} siblings",
                    s.routes,
                    s.customer_prefixes,
                    s.sa_count,
                    s.sa_percent(),
                    s.tagged_neighbors,
                )
            }
            None => format!("{a}: unknown AS"),
        }),
        ["diff", x, y] => parse_snap(x)
            .and_then(|x| parse_snap(y).map(|y| (x, y)))
            .map(|(x, y)| match engine.diff(x, y) {
                Some(d) => format!(
                    "{} → {}: {} new SA, {} gone SA, {} relationship flips, {} churned routes",
                    d.from_label,
                    d.to_label,
                    d.new_sa.len(),
                    d.gone_sa.len(),
                    d.flips.len(),
                    d.churned_routes()
                ),
                None => "invalid snapshot id".into(),
            }),
        _ => Err(format!("unrecognized query '{line}' (try 'help')")),
    };
    match outcome {
        Ok(s) if s.is_empty() => {}
        Ok(s) => println!("{s}"),
        Err(e) => println!("error: {e}"),
    }
    true
}

/// The throughput report behind the `--bench` flag.
fn bench(exp: &Experiment, engine: &QueryEngine, max_shards: usize) {
    // Query workload: every (vantage, prefix) pair the world knows.
    let mut pairs: Vec<(Asn, Ipv4Prefix)> = Vec::new();
    for (vantage, _) in engine.vantages() {
        if let Some(t) = exp.lg_table(vantage) {
            pairs.extend(t.rows.keys().map(|&p| (vantage, p)));
        } else {
            let t = exp.collector_table(vantage);
            pairs.extend(t.rows.keys().map(|&p| (vantage, p)));
        }
    }
    assert!(!pairs.is_empty(), "bench world has no routes");
    println!(
        "\nworkload: {} distinct (vantage, prefix) queries",
        pairs.len()
    );

    // --- single-route queries ---
    const TARGET: usize = 400_000;
    let rounds = TARGET.div_ceil(pairs.len()).max(1);
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..rounds {
        for &(v, p) in &pairs {
            if engine.route_at(v, p).is_some() {
                hits += 1;
            }
        }
    }
    let total = rounds * pairs.len();
    let elapsed = t0.elapsed();
    let qps = total as f64 / elapsed.as_secs_f64();
    println!(
        "single route_at: {total} queries in {elapsed:.2?} → {qps:.0} queries/s ({hits} hits)"
    );

    // --- sa_status single queries ---
    let t0 = Instant::now();
    for &(v, p) in &pairs {
        std::hint::black_box(engine.sa_status(v, p));
    }
    let qps_sa = pairs.len() as f64 / t0.elapsed().as_secs_f64();
    println!("single sa_status: {qps_sa:.0} queries/s");

    // --- batched queries across shard counts ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nbatched route_at_batch (one engine per shard count, {cores} core(s)):");
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8, 16];
    shard_counts.retain(|&s| s <= max_shards.max(1));
    if !shard_counts.contains(&max_shards) {
        shard_counts.push(max_shards);
    }
    let batch: Vec<(Asn, Ipv4Prefix)> = pairs.iter().cycle().take(TARGET).copied().collect();
    for &n in &shard_counts {
        let mut e = QueryEngine::new(n);
        e.ingest_experiment(exp, "bench");
        let id = e.latest().expect("just ingested");
        let (answers, profile) = e.route_at_batch_profiled(id, &batch);
        let got = answers.iter().filter(|a| a.is_some()).count();
        println!(
            "  {n:>3} shards: {} queries in {:.2?} → {:.0} queries/s wall; \
             critical path {:.2?} → {:.0} queries/s with {n} cores \
             (shard speedup {:.1}×, {got} answered)",
            batch.len(),
            profile.wall,
            batch.len() as f64 / profile.wall.as_secs_f64(),
            profile.critical_path(),
            batch.len() as f64 / profile.critical_path().as_secs_f64(),
            profile.parallel_speedup(),
        );
    }
}
