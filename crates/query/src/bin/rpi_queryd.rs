//! `rpi-queryd` — the observatory as a command-line daemon.
//!
//! Loads an [`Experiment`]-generated world (optionally a churn series of
//! snapshots), ingests it into a [`QueryEngine`], and answers queries from
//! stdin or a file — every query line is the shared wire grammar of
//! [`rpi_query::proto`], so REPL sessions, batch `--queries` files and
//! the engine's tests all speak one language. `--bench` instead runs the
//! throughput report: single route queries per second, batched throughput
//! across shard counts, and a mixed protocol workload.
//!
//! ```text
//! rpi-queryd [--size tiny|small|paper] [--seed N] [--snapshots N]
//!            [--incremental] [--shards N] [--queries FILE] [--bench]
//!            [--save DIR [--force]] [--archive DIR]
//! ```
//!
//! `--incremental` ingests the churn series diff-aware: each snapshot
//! after the first is a copy-on-write overlay sharing unchanged shard
//! subtries with its predecessor (the `snapshots` REPL command shows the
//! per-snapshot shared-node counts).
//!
//! `--save DIR` serializes the ingested world into an `rpi-store`
//! archive and exits; `--archive DIR` cold-starts from one instead of
//! re-simulating (the `archive` REPL command lists its segments).

use std::io::{BufRead, Write as _};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use bgp_sim::churn::simulate_series;
use bgp_sim::ChurnConfig;
use bgp_types::{Asn, Ipv4Prefix};
use net_topology::InternetSize;
use rpi_core::Experiment;
use rpi_query::{
    parse, render_response, ParseError, Query, QueryEngine, Scope, VantageKind, GRAMMAR,
};

struct Options {
    size: InternetSize,
    seed: u64,
    snapshots: usize,
    incremental: bool,
    shards: usize,
    queries: Option<String>,
    bench: bool,
    save: Option<String>,
    archive: Option<String>,
    force: bool,
}

fn usage() -> &'static str {
    "usage: rpi-queryd [--size tiny|small|paper|large] [--seed N] \
     [--snapshots N] [--incremental] [--shards N] [--queries FILE] [--bench] \
     [--save DIR [--force]] [--archive DIR]"
}

fn flag_help() -> &'static str {
    "flags:
  --size KIND       world size: tiny, small, paper, large (default small)
  --seed N          world + churn RNG seed (default 2003)
  --snapshots N     simulate an N-step daily churn series (default 1)
  --incremental     ingest the series diff-aware (copy-on-write overlays)
  --shards N        shards per vantage table (default 8)
  --queries FILE    run the protocol queries in FILE, then exit
  --bench           run the throughput report instead of serving queries
  --save DIR        write the ingested world as an rpi-store archive, then exit
  --force           let --save overwrite an existing archive's MANIFEST
  --archive DIR     cold-start from an archive instead of simulating"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        size: InternetSize::Small,
        seed: 2003,
        snapshots: 1,
        incremental: false,
        shards: 8,
        queries: None,
        bench: false,
        save: None,
        archive: None,
        force: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--size" => opts.size = value("--size")?.parse()?,
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("--seed wants an unsigned integer, got '{v}'"))?;
            }
            "--snapshots" => {
                let v = value("--snapshots")?;
                opts.snapshots = v
                    .parse()
                    .map_err(|_| format!("--snapshots wants a count, got '{v}'"))?;
                if opts.snapshots == 0 {
                    return Err("--snapshots must be at least 1".into());
                }
            }
            "--shards" => {
                let v = value("--shards")?;
                opts.shards = v
                    .parse()
                    .map_err(|_| format!("--shards wants a count, got '{v}'"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--incremental" => opts.incremental = true,
            "--queries" => opts.queries = Some(value("--queries")?),
            "--bench" => opts.bench = true,
            "--save" => opts.save = Some(value("--save")?),
            "--archive" => opts.archive = Some(value("--archive")?),
            "--force" => opts.force = true,
            "--help" | "-h" => {
                println!("{}\n\n{}", usage(), flag_help());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rpi-queryd: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.archive.is_some() && opts.bench {
        eprintln!("rpi-queryd: --bench needs a simulated world; drop --archive");
        return ExitCode::FAILURE;
    }

    let mut exp = None;
    let mut engine;
    if let Some(dir) = &opts.archive {
        let t0 = Instant::now();
        engine = match QueryEngine::load_archive(Path::new(dir)) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("rpi-queryd: --archive: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (asns, prefixes, communities) = engine.interned_sizes();
        let disk = engine.archive_info().map_or(0, |a| a.total_bytes());
        eprintln!(
            "cold-started from {dir} in {:.2?}: {} snapshots ({} on disk), {} shards, \
             interned {asns} ASNs / {prefixes} prefixes / {communities} communities",
            t0.elapsed(),
            engine.snapshot_count(),
            fmt_bytes(disk as u64),
            engine.shard_count(),
        );
    } else {
        eprintln!(
            "building {:?} world (seed {}, {} snapshot{}) …",
            opts.size,
            opts.seed,
            opts.snapshots,
            if opts.snapshots == 1 { "" } else { "s" }
        );
        let t0 = Instant::now();
        let e = Experiment::standard(opts.size, opts.seed);
        engine = QueryEngine::new(opts.shards);
        if opts.snapshots > 1 {
            let cfg = ChurnConfig {
                steps: opts.snapshots,
                ..ChurnConfig::daily(opts.seed ^ 0xC0FFEE)
            };
            let series = simulate_series(&e.graph, &e.truth, &e.spec, &cfg);
            if opts.incremental {
                engine.ingest_series_incremental(&series, &e.inferred_graph);
            } else {
                engine.ingest_series(&series, &e.inferred_graph);
            }
        } else {
            engine.ingest_experiment(&e, "t0");
        }
        exp = Some(e);
        let (asns, prefixes, communities) = engine.interned_sizes();
        eprintln!(
            "ready in {:.2?}: {} snapshots, {} shards, interned {asns} ASNs / {prefixes} prefixes / {communities} communities",
            t0.elapsed(),
            engine.snapshot_count(),
            engine.shard_count(),
        );
        if opts.incremental {
            let stats = engine.sharing_stats();
            eprintln!(
                "incremental ingest: {}/{} trie nodes shared with predecessors ({:.1}%, {} KiB)",
                stats.shared_nodes,
                stats.total_nodes,
                100.0 * stats.shared_ratio(),
                stats.shared_bytes / 1024,
            );
        }
    }

    if let Some(dir) = &opts.save {
        let t0 = Instant::now();
        return match engine.save_archive(Path::new(dir), opts.force) {
            Ok(manifest) => {
                let full = count_kind(&manifest, rpi_store::SegmentKind::Full);
                let delta = count_kind(&manifest, rpi_store::SegmentKind::Delta);
                eprintln!(
                    "saved archive to {dir} in {:.2?}: {} segments (1 symbols, {full} full, {delta} delta), {} on disk",
                    t0.elapsed(),
                    manifest.segments.len(),
                    fmt_bytes(manifest.total_bytes()),
                );
                ExitCode::SUCCESS
            }
            Err(e @ rpi_store::StoreError::AlreadyExists { .. }) => {
                eprintln!("rpi-queryd: --save: {e} (use --force)");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("rpi-queryd: --save: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if opts.bench {
        bench(
            exp.as_ref()
                .expect("checked: --bench never loads an archive"),
            &engine,
            opts.shards,
        );
        return ExitCode::SUCCESS;
    }

    match opts.queries {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => run_file(&engine, &path, &text),
            Err(e) => {
                eprintln!("rpi-queryd: cannot read {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            let stdin = std::io::stdin();
            print!("> ");
            let _ = std::io::stdout().flush();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                match run_line(&engine, &line) {
                    Outcome::Quit => break,
                    Outcome::Ok => {}
                    Outcome::Err(e) => println!("error: {e}"),
                }
                print!("> ");
                let _ = std::io::stdout().flush();
            }
            ExitCode::SUCCESS
        }
    }
}

/// Executes a `--queries` file: blank lines and comments are skipped,
/// REPL commands work, parse and execution errors are reported to stderr
/// with their 1-based line number. Exits FAILURE if any line failed.
fn run_file(engine: &QueryEngine, path: &str, text: &str) -> ExitCode {
    let mut failed = false;
    for (i, line) in text.lines().enumerate() {
        match run_line(engine, line) {
            Outcome::Quit => break,
            Outcome::Ok => {}
            Outcome::Err(e) => {
                eprintln!("rpi-queryd: {path}:{}: {e}", i + 1);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

enum Outcome {
    Ok,
    Err(String),
    Quit,
}

/// `123 B` / `1.2 KiB` / `3.4 MiB`.
fn fmt_bytes(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

fn count_kind(manifest: &rpi_store::Manifest, kind: rpi_store::SegmentKind) -> usize {
    manifest.segments.iter().filter(|s| s.kind == kind).count()
}

/// Executes one line: REPL commands (`help`, `snapshots`, `vantages`,
/// `quit`) directly, everything else through the shared protocol
/// grammar.
fn run_line(engine: &QueryEngine, line: &str) -> Outcome {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Outcome::Ok;
    }
    match trimmed {
        "quit" | "exit" => return Outcome::Quit,
        "help" => {
            println!("{GRAMMAR}\nrepl: snapshots (list snapshots), vantages (list vantages), archive (list on-disk segments), quit");
            return Outcome::Ok;
        }
        "snapshots" => {
            let lines: Vec<String> = engine
                .labels()
                .enumerate()
                .map(|(i, l)| {
                    let id = rpi_query::SnapshotId(i as u32);
                    let n = engine.vantages_in(id).len();
                    let sharing = match engine.sharing_with_prev(id) {
                        Some((shared, total)) if shared > 0 => {
                            format!(", {shared}/{total} trie nodes shared with prev")
                        }
                        _ => String::new(),
                    };
                    // Storage next to sharing: what the snapshot costs on
                    // disk when the engine lives in an archive.
                    let disk = match engine.segment_meta(id) {
                        Some(meta) => {
                            format!(", disk {} ({})", fmt_bytes(meta.bytes), meta.kind.name())
                        }
                        None => ", disk -".to_string(),
                    };
                    format!("{i}: {l} ({n} vantages{sharing}{disk})")
                })
                .collect();
            println!("{}", lines.join("\n"));
            return Outcome::Ok;
        }
        "archive" => {
            match engine.archive_info() {
                None => println!("no archive: engine built in memory (load one with --archive, write one with --save)"),
                Some(info) => {
                    let mut lines = vec![format!(
                        "archive {} ({} segments, {} on disk)",
                        info.dir.display(),
                        1 + info.snapshots.len(),
                        fmt_bytes(info.total_bytes() as u64),
                    )];
                    let all = std::iter::once(&info.symbols).chain(&info.snapshots);
                    for meta in all {
                        let label = if meta.label.is_empty() {
                            String::new()
                        } else {
                            format!(" label {}", meta.label)
                        };
                        lines.push(format!(
                            "  {}: {} {} {} crc 0x{:08x}{label}",
                            meta.index,
                            meta.file,
                            meta.kind.name(),
                            fmt_bytes(meta.bytes),
                            meta.crc32,
                        ));
                    }
                    println!("{}", lines.join("\n"));
                }
            }
            return Outcome::Ok;
        }
        "vantages" => {
            let lines: Vec<String> = engine
                .vantages()
                .into_iter()
                .map(|(a, k)| {
                    let kind = match k {
                        VantageKind::LookingGlass => "looking-glass",
                        VantageKind::CollectorPeer => "collector-peer",
                    };
                    format!("{a} ({kind})")
                })
                .collect();
            println!("{}", lines.join("\n"));
            return Outcome::Ok;
        }
        _ => {}
    }
    let req = match parse(trimmed) {
        Ok(req) => req,
        // The Display of an unknown-query error lists the whole grammar.
        Err(e @ ParseError::UnknownQuery(_)) => return Outcome::Err(e.to_string()),
        Err(e) => return Outcome::Err(format!("{e} (type 'help' for the grammar)")),
    };
    match engine.execute(&req) {
        Ok(resp) => {
            println!("{}", render_response(&req, &resp));
            Outcome::Ok
        }
        Err(e) => Outcome::Err(e.to_string()),
    }
}

/// The throughput report behind the `--bench` flag.
fn bench(exp: &Experiment, engine: &QueryEngine, max_shards: usize) {
    // Query workload: every (vantage, prefix) pair the world knows.
    let mut pairs: Vec<(Asn, Ipv4Prefix)> = Vec::new();
    for (vantage, _) in engine.vantages() {
        if let Some(t) = exp.lg_table(vantage) {
            pairs.extend(t.rows.keys().map(|&p| (vantage, p)));
        } else {
            let t = exp.collector_table(vantage);
            pairs.extend(t.rows.keys().map(|&p| (vantage, p)));
        }
    }
    assert!(!pairs.is_empty(), "bench world has no routes");
    println!(
        "\nworkload: {} distinct (vantage, prefix) queries",
        pairs.len()
    );

    // --- single-route queries ---
    const TARGET: usize = 400_000;
    let rounds = TARGET.div_ceil(pairs.len()).max(1);
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..rounds {
        for &(v, p) in &pairs {
            if engine.route_at(v, p).is_some() {
                hits += 1;
            }
        }
    }
    let total = rounds * pairs.len();
    let elapsed = t0.elapsed();
    let qps = total as f64 / elapsed.as_secs_f64();
    println!(
        "single route_at: {total} queries in {elapsed:.2?} → {qps:.0} queries/s ({hits} hits)"
    );

    // --- sa_status single queries ---
    let t0 = Instant::now();
    for &(v, p) in &pairs {
        std::hint::black_box(engine.sa_status(v, p));
    }
    let qps_sa = pairs.len() as f64 / t0.elapsed().as_secs_f64();
    println!("single sa_status: {qps_sa:.0} queries/s");

    // --- batched queries across shard counts ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nbatched route_at_batch (one engine per shard count, {cores} core(s)):");
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8, 16];
    shard_counts.retain(|&s| s <= max_shards.max(1));
    if !shard_counts.contains(&max_shards) {
        shard_counts.push(max_shards);
    }
    let batch: Vec<(Asn, Ipv4Prefix)> = pairs.iter().cycle().take(TARGET).copied().collect();
    for &n in &shard_counts {
        let mut e = QueryEngine::new(n);
        e.ingest_experiment(exp, "bench");
        let id = e.latest().expect("just ingested");
        let (answers, profile) = e.route_at_batch_profiled(id, &batch);
        let got = answers.iter().filter(|a| a.is_some()).count();
        println!(
            "  {n:>3} shards: {} queries in {:.2?} → {:.0} queries/s wall; \
             critical path {:.2?} → {:.0} queries/s with {n} cores \
             (shard speedup {:.1}×, {got} answered)",
            batch.len(),
            profile.wall,
            batch.len() as f64 / profile.wall.as_secs_f64(),
            profile.critical_path(),
            batch.len() as f64 / profile.critical_path().as_secs_f64(),
            profile.parallel_speedup(),
        );
    }

    // --- series ingest: full re-index vs incremental (COW overlays) ---
    // A dozen daily snapshots at ~1% route churn each (the paper's §6
    // series is 31 days of this).
    const SERIES_STEPS: usize = 12;
    let cfg = ChurnConfig {
        steps: SERIES_STEPS,
        flip_prob: 0.07,
        link_failure_prob: 0.01,
        ..ChurnConfig::daily(7)
    };
    let series = simulate_series(&exp.graph, &exp.truth, &exp.spec, &cfg);
    let events: usize = series.deltas().iter().map(|d| d.route_events()).sum();
    let report = rpi_query::measure_series_ingest(&series, &exp.inferred_graph, max_shards, 3);
    println!(
        "\nseries ingest ({SERIES_STEPS} snapshots, {events} route events):\n  \
         full re-index {:.2?}, incremental {:.2?} → {:.1}× faster; \
         {}/{} trie nodes shared ({:.1}%, {} KiB)",
        report.full,
        report.incremental,
        report.speedup(),
        report.stats.shared_nodes,
        report.stats.total_nodes,
        100.0 * report.stats.shared_ratio(),
        report.stats.shared_bytes / 1024,
    );

    // --- mixed protocol workload through execute_batch ---
    let reqs: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(vantage, prefix))| match i % 3 {
            0 => Query::Route { vantage, prefix }.at(Scope::Latest),
            1 => Query::SaStatus { vantage, prefix }.at(Scope::Latest),
            _ => Query::Resolve { vantage, prefix }.at(Scope::Latest),
        })
        .collect();
    let (results, profile) = engine.execute_batch_profiled(&reqs);
    let answered = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "\nmixed execute_batch (route/sa/resolve): {} requests in {:.2?} → {:.0} req/s wall \
         (critical path {:.2?}, lane speedup {:.1}×, {answered} ok)",
        reqs.len(),
        profile.wall,
        reqs.len() as f64 / profile.wall.as_secs_f64(),
        profile.critical_path(),
        profile.parallel_speedup(),
    );
}
