//! `rpi-queryd` — the observatory as a command-line daemon.
//!
//! Loads an [`Experiment`]-generated world (optionally a churn series of
//! snapshots), ingests it into a [`QueryEngine`], and answers queries
//! from stdin, a file, or — with `--listen` — a non-blocking TCP front
//! end ([`rpi_query::serve`]). Every query line is the shared wire
//! grammar of [`rpi_query::proto`], so REPL sessions, batch `--queries`
//! files, TCP clients and the engine's tests all speak one language and
//! get byte-identical answers. `--bench` instead runs the throughput
//! report: single route queries per second, batched throughput across
//! shard counts, and a mixed protocol workload.
//!
//! ```text
//! rpi-queryd [--size tiny|small|paper] [--seed N] [--snapshots N]
//!            [--incremental] [--shards N] [--queries FILE] [--bench]
//!            [--save DIR [--force]] [--archive DIR]
//!            [--listen ADDR [--max-conns N] [--write-buf-cap BYTES]]
//! ```
//!
//! `--incremental` ingests the churn series diff-aware: each snapshot
//! after the first is a copy-on-write overlay sharing unchanged shard
//! subtries with its predecessor (the `snapshots` REPL command shows the
//! per-snapshot shared-node counts).
//!
//! `--save DIR` serializes the ingested world into an `rpi-store`
//! archive and exits; `--archive DIR` cold-starts from one instead of
//! re-simulating (the `archive` REPL command lists its segments).
//!
//! `--listen ADDR` serves the same grammar over TCP, e.g.:
//!
//! ```text
//! rpi-queryd --archive /tmp/rpi-archive --listen 127.0.0.1:4321 &
//! printf 'route AS1 4.0.0.0/13\nquit\n' | nc 127.0.0.1 4321
//! ```

use std::io::{BufRead, Write as _};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use bgp_sim::churn::simulate_series;
use bgp_sim::ChurnConfig;
use bgp_types::{Asn, Ipv4Prefix};
use net_topology::InternetSize;
use rpi_core::Experiment;
use rpi_query::serve::session::{classify_line, fmt_bytes, repl_reply, Line};
use rpi_query::serve::ServeStats;
use rpi_query::{Control, PollBackend, Query, QueryEngine, Scope, ServeConfig, Server};

struct Options {
    size: InternetSize,
    seed: u64,
    snapshots: usize,
    incremental: bool,
    shards: usize,
    queries: Option<String>,
    roas: Option<String>,
    bench: bool,
    save: Option<String>,
    archive: Option<String>,
    hot_cap: Option<usize>,
    keyframe_every: Option<usize>,
    force: bool,
    listen: Option<String>,
    max_conns: usize,
    write_buf_cap: usize,
    backend: Option<PollBackend>,
    serve_threads: usize,
    idle_timeout_secs: u64,
    follow: Option<String>,
    window: usize,
    spill: Option<String>,
    emit_deltas: Option<String>,
    emit_delay_ms: u64,
    metrics_interval: Option<u64>,
    metrics_file: Option<String>,
    slow_query_ms: Option<u64>,
}

fn usage() -> &'static str {
    "usage: rpi-queryd [--size tiny|small|paper|large] [--seed N] \
     [--snapshots N] [--incremental] [--shards N] [--queries FILE] \
     [--roas FILE] [--bench] \
     [--save DIR [--force] [--keyframe-every N]] \
     [--archive DIR [--hot-cap N]] \
     [--listen ADDR [--max-conns N] [--write-buf-cap BYTES] \
      [--backend sweep|epoll|auto] [--serve-threads N] [--idle-timeout SECS]] \
     [--follow FILE [--window N] [--spill DIR]] \
     [--emit-deltas FILE [--emit-delay-ms MS]] \
     [--metrics-interval SECS [--metrics-file FILE]] [--slow-query-ms N]"
}

fn flag_help() -> &'static str {
    "flags:
  --size KIND          world size: tiny, small, paper, large (default small)
  --seed N             world + churn RNG seed (default 2003)
  --snapshots N        simulate an N-step daily churn series (default 1)
  --incremental        ingest the series diff-aware (copy-on-write overlays)
  --shards N           shards per vantage table (default 8)
  --queries FILE       run the protocol queries in FILE, then exit
  --roas FILE          load route-origin authorizations for `rov` / RPKI state
                       (one '<prefix>[-<max-length>] <origin-asn>' per line;
                       saved into archives, so --archive restores them)
  --bench              run the throughput report instead of serving queries
  --save DIR           write the ingested world as an rpi-store archive, then exit
  --keyframe-every N   save: force a self-contained keyframe segment every N
                       snapshots, bounding every delta chain (tiered readers
                       hydrate a cold snapshot from its nearest keyframe)
  --force              let --save overwrite an existing archive's MANIFEST
  --archive DIR        cold-start from an archive instead of simulating
  --hot-cap N          attach the archive tiered instead of hydrating it:
                       map every segment (µs/snapshot), answer point queries
                       zero-copy off the cold mappings, and keep at most N
                       snapshots hydrated under LRU (`snapshots` shows
                       residency; v1 archives fall back to a full load)
  --listen ADDR        serve the query grammar over TCP on ADDR (e.g. 127.0.0.1:4321)
  --max-conns N        serve: concurrent connection cap (default 64)
  --write-buf-cap B    serve: per-connection response-buffer cap in bytes,
                       past which the connection is backpressured (default 262144)
  --backend KIND       serve: readiness backend — epoll (kernel notification,
                       Linux; idle connections cost nothing) or sweep (portable
                       attempt-and-WouldBlock fallback); auto picks epoll where
                       supported (default: $RPI_SERVE_BACKEND, else auto)
  --serve-threads N    serve: shard connections across N event-loop threads
                       behind a dedicated acceptor (round-robin handoff); 1
                       keeps the listener inline in a single loop (default 1)
  --idle-timeout SECS  serve: shed connections with no byte movement for SECS
                       seconds (default 30)
  --follow FILE        serve while ingesting: tail the structured delta-event
                       stream in FILE (what --emit-deltas writes), publish an
                       immutable engine epoch per snapshot, and answer queries
                       — over --listen or the stdin REPL — from the latest
                       published epoch; readers are never blocked by, and never
                       observe, a publication in progress
  --window N           follow: snapshots kept hydrated in memory (default 4);
                       older ones spill to segments and stay queryable cold
  --spill DIR          follow: spill segment directory (default FILE.spill)
  --emit-deltas FILE   simulate the churn series and write it to FILE as a
                       delta-event stream for --follow, then exit
  --emit-delay-ms MS   emit-deltas: pause MS milliseconds before each snapshot
                       frame, so a concurrent --follow daemon ingests a
                       genuinely growing file (default 0)
  --metrics-interval S serve/follow: every S seconds append one JSON line of
                       interval-diffed metrics (counter deltas, current gauges,
                       interval latency percentiles) to stderr, and track the
                       peak per-interval query rate reported on exit
  --metrics-file FILE  write the interval JSON lines to FILE (append) instead
                       of stderr; needs --metrics-interval
  --slow-query-ms N    record query segments slower than N ms in a bounded
                       in-memory ring; the `slowlog` REPL verb dumps it

the `metrics` verb (stdin or TCP) scrapes the full Prometheus-style
exposition; `metrics names` prints just the name/kind schema and `stats`
a human per-verb latency table.

serve example (the same grammar, line by line; `quit` ends a connection,
`shutdown` stops the server and prints its stats):
  rpi-queryd --archive /tmp/rpi-archive --listen 127.0.0.1:4321 &
  printf 'route AS1 4.0.0.0/13\\nquit\\n' | nc 127.0.0.1 4321"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        size: InternetSize::Small,
        seed: 2003,
        snapshots: 1,
        incremental: false,
        shards: 8,
        queries: None,
        roas: None,
        bench: false,
        save: None,
        archive: None,
        hot_cap: None,
        keyframe_every: None,
        force: false,
        listen: None,
        max_conns: 64,
        write_buf_cap: 256 * 1024,
        backend: None,
        serve_threads: 1,
        idle_timeout_secs: 30,
        follow: None,
        window: 4,
        spill: None,
        emit_deltas: None,
        emit_delay_ms: 0,
        metrics_interval: None,
        metrics_file: None,
        slow_query_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--size" => opts.size = value("--size")?.parse()?,
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("--seed wants an unsigned integer, got '{v}'"))?;
            }
            "--snapshots" => {
                let v = value("--snapshots")?;
                opts.snapshots = v
                    .parse()
                    .map_err(|_| format!("--snapshots wants a count, got '{v}'"))?;
                if opts.snapshots == 0 {
                    return Err("--snapshots must be at least 1".into());
                }
            }
            "--shards" => {
                let v = value("--shards")?;
                opts.shards = v
                    .parse()
                    .map_err(|_| format!("--shards wants a count, got '{v}'"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--incremental" => opts.incremental = true,
            "--queries" => opts.queries = Some(value("--queries")?),
            "--roas" => opts.roas = Some(value("--roas")?),
            "--bench" => opts.bench = true,
            "--save" => opts.save = Some(value("--save")?),
            "--archive" => opts.archive = Some(value("--archive")?),
            "--hot-cap" => {
                let v = value("--hot-cap")?;
                let cap = v
                    .parse()
                    .map_err(|_| format!("--hot-cap wants a count, got '{v}'"))?;
                if cap == 0 {
                    return Err("--hot-cap must be at least 1".into());
                }
                opts.hot_cap = Some(cap);
            }
            "--keyframe-every" => {
                let v = value("--keyframe-every")?;
                let every = v
                    .parse()
                    .map_err(|_| format!("--keyframe-every wants a count, got '{v}'"))?;
                if every == 0 {
                    return Err("--keyframe-every must be at least 1".into());
                }
                opts.keyframe_every = Some(every);
            }
            "--force" => opts.force = true,
            "--listen" => opts.listen = Some(value("--listen")?),
            "--max-conns" => {
                let v = value("--max-conns")?;
                opts.max_conns = v
                    .parse()
                    .map_err(|_| format!("--max-conns wants a count, got '{v}'"))?;
                if opts.max_conns == 0 {
                    return Err("--max-conns must be at least 1".into());
                }
            }
            "--write-buf-cap" => {
                let v = value("--write-buf-cap")?;
                opts.write_buf_cap = v
                    .parse()
                    .map_err(|_| format!("--write-buf-cap wants bytes, got '{v}'"))?;
                if opts.write_buf_cap == 0 {
                    return Err("--write-buf-cap must be at least 1".into());
                }
            }
            "--backend" => {
                let v = value("--backend")?;
                let backend: PollBackend = v.parse()?;
                if !backend.supported() {
                    return Err(format!(
                        "--backend {v} is not supported on this platform (try auto)"
                    ));
                }
                opts.backend = Some(backend);
            }
            "--serve-threads" => {
                let v = value("--serve-threads")?;
                opts.serve_threads = v
                    .parse()
                    .map_err(|_| format!("--serve-threads wants a count, got '{v}'"))?;
                if opts.serve_threads == 0 {
                    return Err("--serve-threads must be at least 1".into());
                }
            }
            "--idle-timeout" => {
                let v = value("--idle-timeout")?;
                opts.idle_timeout_secs = v
                    .parse()
                    .map_err(|_| format!("--idle-timeout wants seconds, got '{v}'"))?;
                if opts.idle_timeout_secs == 0 {
                    return Err("--idle-timeout must be at least 1".into());
                }
            }
            "--follow" => opts.follow = Some(value("--follow")?),
            "--window" => {
                let v = value("--window")?;
                opts.window = v
                    .parse()
                    .map_err(|_| format!("--window wants a count, got '{v}'"))?;
                if opts.window == 0 {
                    return Err("--window must be at least 1".into());
                }
            }
            "--spill" => opts.spill = Some(value("--spill")?),
            "--emit-deltas" => opts.emit_deltas = Some(value("--emit-deltas")?),
            "--emit-delay-ms" => {
                let v = value("--emit-delay-ms")?;
                opts.emit_delay_ms = v
                    .parse()
                    .map_err(|_| format!("--emit-delay-ms wants milliseconds, got '{v}'"))?;
            }
            "--metrics-interval" => {
                let v = value("--metrics-interval")?;
                let secs = v
                    .parse()
                    .map_err(|_| format!("--metrics-interval wants seconds, got '{v}'"))?;
                if secs == 0 {
                    return Err("--metrics-interval must be at least 1".into());
                }
                opts.metrics_interval = Some(secs);
            }
            "--metrics-file" => opts.metrics_file = Some(value("--metrics-file")?),
            "--slow-query-ms" => {
                let v = value("--slow-query-ms")?;
                let ms = v
                    .parse()
                    .map_err(|_| format!("--slow-query-ms wants milliseconds, got '{v}'"))?;
                if ms == 0 {
                    return Err("--slow-query-ms must be at least 1".into());
                }
                opts.slow_query_ms = Some(ms);
            }
            "--help" | "-h" => {
                println!("{}\n\n{}", usage(), flag_help());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

/// The serve tunables from the CLI: `--backend` (else the
/// `RPI_SERVE_BACKEND`/auto default), `--serve-threads`,
/// `--idle-timeout` and the connection caps.
fn serve_config(opts: &Options) -> ServeConfig {
    let mut cfg = ServeConfig {
        max_conns: opts.max_conns,
        write_buf_cap: opts.write_buf_cap,
        idle_timeout: std::time::Duration::from_secs(opts.idle_timeout_secs),
        serve_threads: opts.serve_threads,
        ..ServeConfig::default()
    };
    if let Some(backend) = opts.backend {
        cfg.backend = backend;
    }
    cfg
}

/// The one-line startup banner (the serve smokes poll for `serving on`).
fn serving_banner(addr: std::net::SocketAddr, opts: &Options, cfg: &ServeConfig) -> String {
    format!(
        "serving on {addr} ({} max conns, {} write-buf cap, {} backend, {} serve thread{}); \
         a 'shutdown' line stops the server",
        opts.max_conns,
        fmt_bytes(opts.write_buf_cap as u64),
        cfg.backend.effective(),
        cfg.serve_threads.max(1),
        if cfg.serve_threads.max(1) == 1 {
            ""
        } else {
            "s"
        },
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rpi-queryd: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.archive.is_some() && opts.bench {
        eprintln!("rpi-queryd: --bench needs a simulated world; drop --archive");
        return ExitCode::FAILURE;
    }
    if opts.hot_cap.is_some() && opts.archive.is_none() {
        eprintln!("rpi-queryd: --hot-cap tiers an archive; it needs --archive");
        return ExitCode::FAILURE;
    }
    if opts.keyframe_every.is_some() && opts.save.is_none() && opts.follow.is_none() {
        eprintln!("rpi-queryd: --keyframe-every shapes an archive; it needs --save or --follow");
        return ExitCode::FAILURE;
    }
    if opts.listen.is_some() && (opts.bench || opts.queries.is_some() || opts.save.is_some()) {
        eprintln!("rpi-queryd: --listen serves TCP; drop --bench/--queries/--save");
        return ExitCode::FAILURE;
    }
    if opts.follow.is_some()
        && (opts.bench || opts.queries.is_some() || opts.save.is_some() || opts.archive.is_some())
    {
        eprintln!("rpi-queryd: --follow ingests live; drop --bench/--queries/--save/--archive");
        return ExitCode::FAILURE;
    }
    if opts.emit_deltas.is_some()
        && (opts.follow.is_some()
            || opts.listen.is_some()
            || opts.bench
            || opts.queries.is_some()
            || opts.save.is_some()
            || opts.archive.is_some())
    {
        eprintln!("rpi-queryd: --emit-deltas writes a stream and exits; run it alone");
        return ExitCode::FAILURE;
    }
    if (opts.spill.is_some() || opts.window != 4) && opts.follow.is_none() {
        eprintln!("rpi-queryd: --window/--spill tune live ingest; they need --follow");
        return ExitCode::FAILURE;
    }
    if opts.metrics_file.is_some() && opts.metrics_interval.is_none() {
        eprintln!("rpi-queryd: --metrics-file needs --metrics-interval");
        return ExitCode::FAILURE;
    }
    if opts.metrics_interval.is_some() && opts.listen.is_none() && opts.follow.is_none() {
        eprintln!("rpi-queryd: --metrics-interval snapshots a serving daemon; it needs --listen or --follow");
        return ExitCode::FAILURE;
    }

    // Fail fast on bad inputs *before* the expensive world build / archive
    // load: a missing query file or an unbindable listen address is a
    // one-line error, never a panic (and never minutes of wasted ingest).
    let query_text = match &opts.queries {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("rpi-queryd: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // ROA files parse before the world build too, with the same
    // `path:line:` error spelling as `--queries` execution errors.
    let roa_table = match &opts.roas {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match rpi_sec::RoaTable::parse(&text) {
                Ok(table) => Some(table),
                Err(e) => {
                    eprintln!("rpi-queryd: {path}:{}: {}", e.line, e.msg);
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("rpi-queryd: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let listener = match &opts.listen {
        Some(addr) => match std::net::TcpListener::bind(addr) {
            Ok(l) => Some(l),
            Err(e) => {
                eprintln!("rpi-queryd: --listen: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // The metrics sink opens before the world build too: an unwritable
    // path fails in milliseconds, not after ingest.
    let metrics_file = match &opts.metrics_file {
        Some(path) => match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("rpi-queryd: --metrics-file: cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // Generator mode: simulate the churn series and write it as a
    // structured delta-event stream a concurrent `--follow` daemon can
    // tail. The file is created (with its header) before the expensive
    // world build finishes frame production, and each frame is written
    // atomically enough for a tailing reader: frames are length-prefixed,
    // so a partial tail parses as "need more bytes", never as a frame.
    if let Some(path) = &opts.emit_deltas {
        return emit_deltas(&opts, path);
    }

    // Live mode: a writer thread tails the stream and publishes an
    // engine epoch per snapshot; the server (or stdin REPL) answers
    // every batch from the latest published epoch.
    if let Some(path) = opts.follow.clone() {
        return follow_and_serve(&opts, path, roa_table, listener, metrics_file);
    }

    let mut exp = None;
    let mut engine;
    if let Some(dir) = &opts.archive {
        let t0 = Instant::now();
        let load = match opts.hot_cap {
            Some(cap) => QueryEngine::load_archive_tiered(Path::new(dir), cap),
            None => QueryEngine::load_archive(Path::new(dir)),
        };
        engine = match load {
            Ok(e) => e,
            Err(e) => {
                eprintln!("rpi-queryd: --archive: {e}");
                return ExitCode::FAILURE;
            }
        };
        let elapsed = t0.elapsed();
        let (asns, prefixes, communities) = engine.interned_sizes();
        let disk = engine.archive_info().map_or(0, |a| a.total_bytes());
        eprintln!(
            "cold-started from {dir} in {:.2?}: {} snapshots ({} on disk), {} shards, \
             interned {asns} ASNs / {prefixes} prefixes / {communities} communities",
            elapsed,
            engine.snapshot_count(),
            fmt_bytes(disk as u64),
            engine.shard_count(),
        );
        match (opts.hot_cap, engine.tier_stats()) {
            (Some(_), Some(stats)) => eprintln!(
                "tier-attached: {} segments mapped in {:.1} µs/snapshot (hot cap {}); \
                 point queries answer zero-copy off the cold mappings",
                stats.snapshots,
                elapsed.as_micros() as f64 / stats.snapshots.max(1) as f64,
                stats.hot_cap,
            ),
            (Some(_), None) => eprintln!(
                "note: {dir} predates the vantage directory (format v1); \
                 loaded fully hydrated, --hot-cap has no effect"
            ),
            _ => {}
        }
    } else {
        eprintln!(
            "building {:?} world (seed {}, {} snapshot{}) …",
            opts.size,
            opts.seed,
            opts.snapshots,
            if opts.snapshots == 1 { "" } else { "s" }
        );
        let t0 = Instant::now();
        let e = Experiment::standard(opts.size, opts.seed);
        engine = QueryEngine::new(opts.shards);
        if opts.snapshots > 1 {
            let cfg = ChurnConfig {
                steps: opts.snapshots,
                ..ChurnConfig::daily(opts.seed ^ 0xC0FFEE)
            };
            let series = simulate_series(&e.graph, &e.truth, &e.spec, &cfg);
            if opts.incremental {
                engine.ingest_series_incremental(&series, &e.inferred_graph);
            } else {
                engine.ingest_series(&series, &e.inferred_graph);
            }
        } else {
            engine.ingest_experiment(&e, "t0");
        }
        exp = Some(e);
        let (asns, prefixes, communities) = engine.interned_sizes();
        eprintln!(
            "ready in {:.2?}: {} snapshots, {} shards, interned {asns} ASNs / {prefixes} prefixes / {communities} communities",
            t0.elapsed(),
            engine.snapshot_count(),
            engine.shard_count(),
        );
        if opts.incremental {
            let stats = engine.sharing_stats();
            eprintln!(
                "incremental ingest: {}/{} trie nodes shared with predecessors ({:.1}%, {} KiB)",
                stats.shared_nodes,
                stats.total_nodes,
                100.0 * stats.shared_ratio(),
                stats.shared_bytes / 1024,
            );
        }
    }

    if let Some(table) = roa_table {
        let path = opts.roas.as_deref().expect("table implies --roas");
        eprintln!("loaded {} ROAs from {path}", table.len());
        engine.set_roas(table);
    }
    if let Some(ms) = opts.slow_query_ms {
        engine.metrics().set_slow_threshold_ms(ms);
    }

    if let Some(dir) = &opts.save {
        let t0 = Instant::now();
        let options = rpi_query::SaveOptions {
            keyframe_every: opts.keyframe_every,
        };
        return match engine.save_archive_with(Path::new(dir), opts.force, options) {
            Ok(manifest) => {
                let full = count_kind(&manifest, rpi_store::SegmentKind::Full);
                let delta = count_kind(&manifest, rpi_store::SegmentKind::Delta);
                let roa = count_kind(&manifest, rpi_store::SegmentKind::Roa);
                let roa = if roa > 0 {
                    format!(", {roa} roa")
                } else {
                    String::new()
                };
                let keyframes = manifest.segments.iter().filter(|s| s.is_keyframe()).count();
                let kf = if keyframes > 0 {
                    format!("; {keyframes} keyframes")
                } else {
                    String::new()
                };
                eprintln!(
                    "saved archive to {dir} in {:.2?}: {} segments (1 symbols, {full} full, {delta} delta{roa}{kf}), {} on disk",
                    t0.elapsed(),
                    manifest.segments.len(),
                    fmt_bytes(manifest.total_bytes()),
                );
                ExitCode::SUCCESS
            }
            Err(e @ rpi_store::StoreError::AlreadyExists { .. }) => {
                eprintln!("rpi-queryd: --save: {e} (use --force)");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("rpi-queryd: --save: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if opts.bench {
        bench(
            exp.as_ref()
                .expect("checked: --bench never loads an archive"),
            &engine,
            opts.shards,
        );
        return ExitCode::SUCCESS;
    }

    // The serve mode: share the built engine across the accept loop and
    // run until a `shutdown` control line, then report the stats
    // snapshot (SIGINT-free shutdown).
    if let Some(listener) = listener {
        let cfg = serve_config(&opts);
        let engine = Arc::new(engine);
        let server = match Server::with_listener(Arc::clone(&engine), listener, cfg.clone()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rpi-queryd: --listen: {e}");
                return ExitCode::FAILURE;
            }
        };
        match server.local_addr() {
            Ok(addr) => eprintln!("{}", serving_banner(addr, &opts, &cfg)),
            Err(e) => {
                eprintln!("rpi-queryd: --listen: {e}");
                return ExitCode::FAILURE;
            }
        }
        let emitter = opts.metrics_interval.map(|secs| {
            let e = Arc::clone(&engine);
            MetricsEmitter::spawn(
                move || Arc::clone(&e),
                std::time::Duration::from_secs(secs),
                metrics_file,
            )
        });
        return match server.run() {
            Ok(stats) => {
                if let Some(em) = emitter {
                    em.finish();
                }
                eprintln!("{}", stats.render());
                report_peak_rate(&opts, engine.metrics(), &stats);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rpi-queryd: serve: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match (&opts.queries, query_text) {
        (Some(path), Some(text)) => run_file(&engine, path, &text),
        _ => {
            let stdin = std::io::stdin();
            print!("> ");
            let _ = std::io::stdout().flush();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                match run_line(&engine, &line) {
                    Outcome::Quit => break,
                    Outcome::Ok => {}
                    Outcome::Err(e) => println!("error: {e}"),
                }
                print!("> ");
                let _ = std::io::stdout().flush();
            }
            ExitCode::SUCCESS
        }
    }
}

/// `--emit-deltas`: simulate, then stream — header first, one
/// length-prefixed frame per snapshot (paced by `--emit-delay-ms`), the
/// end marker last.
fn emit_deltas(opts: &Options, path: &str) -> ExitCode {
    use std::io::Write as _;
    eprintln!(
        "building {:?} world (seed {}, {} snapshot{}) …",
        opts.size,
        opts.seed,
        opts.snapshots,
        if opts.snapshots == 1 { "" } else { "s" }
    );
    let t0 = Instant::now();
    let e = Experiment::standard(opts.size, opts.seed);
    let cfg = ChurnConfig {
        steps: opts.snapshots,
        ..ChurnConfig::daily(opts.seed ^ 0xC0FFEE)
    };
    let series = simulate_series(&e.graph, &e.truth, &e.spec, &cfg);
    let mut file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(err) => {
            eprintln!("rpi-queryd: --emit-deltas: cannot create {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let write = |file: &mut std::fs::File, bytes: &[u8]| -> Result<(), std::io::Error> {
        file.write_all(bytes)?;
        file.flush()
    };
    let (mut sw, header) = bgp_sim::StreamWriter::open(&e.inferred_graph);
    let mut emitted = 0usize;
    let result = write(&mut file, &header).and_then(|()| {
        for (i, (label, out)) in series.labels.iter().zip(&series.snapshots).enumerate() {
            if opts.emit_delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(opts.emit_delay_ms));
            }
            let frame = sw.frame(label, out, None);
            write(&mut file, &frame)?;
            emitted = i + 1;
            eprintln!("emit: wrote snapshot {emitted} ({label})");
        }
        write(&mut file, &sw.end())
    });
    if let Err(err) = result {
        eprintln!("rpi-queryd: --emit-deltas: writing {path}: {err}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "emitted {emitted} snapshot{} to {path} in {:.2?}",
        if emitted == 1 { "" } else { "s" },
        t0.elapsed(),
    );
    ExitCode::SUCCESS
}

/// `--follow`: spawn the live writer thread, then serve (TCP or stdin
/// REPL) from the latest published epoch until shutdown.
fn follow_and_serve(
    opts: &Options,
    path: String,
    roa_table: Option<rpi_sec::RoaTable>,
    listener: Option<std::net::TcpListener>,
    metrics_file: Option<std::fs::File>,
) -> ExitCode {
    use std::sync::atomic::{AtomicBool, Ordering};

    let mut base = QueryEngine::new(opts.shards);
    if let Some(table) = roa_table {
        let roa_path = opts.roas.as_deref().expect("table implies --roas");
        eprintln!("loaded {} ROAs from {roa_path}", table.len());
        base.set_roas(table);
    }
    if let Some(ms) = opts.slow_query_ms {
        base.metrics().set_slow_threshold_ms(ms);
    }
    // Every published epoch shares the base engine's metrics registry,
    // so this handle observes the whole run regardless of epoch swaps.
    let base_metrics = base.metrics_arc();
    let handle = rpi_query::LiveHandle::new(base);
    let emitter = opts.metrics_interval.map(|secs| {
        let h = Arc::clone(&handle);
        MetricsEmitter::spawn(
            move || h.current(),
            std::time::Duration::from_secs(secs),
            metrics_file,
        )
    });
    let spill = opts
        .spill
        .clone()
        .unwrap_or_else(|| format!("{path}.spill"));
    let live_opts = rpi_query::LiveOptions {
        window: opts.window,
        keyframe_every: opts.keyframe_every.unwrap_or(4),
    };
    eprintln!(
        "live: following {path} (window {}, keyframe every {}, spill {spill})",
        live_opts.window, live_opts.keyframe_every,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        let path = path.clone();
        let spill = spill.clone();
        std::thread::spawn(move || {
            // The generator may not have created the file yet.
            while !Path::new(&path).exists() {
                if stop.load(Ordering::Acquire) {
                    return Ok(rpi_query::FollowReport {
                        snapshots: 0,
                        end: rpi_query::FollowEnd::Stopped,
                    });
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            let result = rpi_query::follow_stream(
                Path::new(&path),
                handle,
                Path::new(&spill),
                live_opts,
                std::time::Duration::from_millis(2),
                &stop,
                |n, label| eprintln!("live: published snapshot {n} ({label})"),
            );
            match &result {
                Ok(report) if report.end == rpi_query::FollowEnd::EndMarker => eprintln!(
                    "live: reached end of stream after {} snapshots; serving the final world",
                    report.snapshots
                ),
                Ok(_) => {}
                Err(e) => eprintln!("rpi-queryd: --follow: {e}"),
            }
            result
        })
    };

    let served = if let Some(listener) = listener {
        let cfg = serve_config(opts);
        let source = rpi_query::EngineSource::Live(Arc::clone(&handle));
        let server = match Server::with_listener_source(source, listener, cfg.clone()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rpi-queryd: --listen: {e}");
                stop.store(true, Ordering::Release);
                let _ = writer.join();
                return ExitCode::FAILURE;
            }
        };
        match server.local_addr() {
            Ok(addr) => eprintln!("{}", serving_banner(addr, opts, &cfg)),
            Err(e) => {
                eprintln!("rpi-queryd: --listen: {e}");
                stop.store(true, Ordering::Release);
                let _ = writer.join();
                return ExitCode::FAILURE;
            }
        }
        match server.run() {
            Ok(stats) => {
                eprintln!("{}", stats.render());
                report_peak_rate(opts, &base_metrics, &stats);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rpi-queryd: serve: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        // Stdin REPL against the moving world: each line loads the
        // epoch current at that moment, so one line's answer is one
        // consistent snapshot of the published state.
        let stdin = std::io::stdin();
        print!("> ");
        let _ = std::io::stdout().flush();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            let epoch = handle.current();
            match run_line(&epoch, &line) {
                Outcome::Quit => break,
                Outcome::Ok => {}
                Outcome::Err(e) => println!("error: {e}"),
            }
            print!("> ");
            let _ = std::io::stdout().flush();
        }
        ExitCode::SUCCESS
    };

    stop.store(true, Ordering::Release);
    if let Some(em) = emitter {
        em.finish();
    }
    match writer.join() {
        Ok(Ok(_)) => served,
        Ok(Err(_)) => ExitCode::FAILURE,
        Err(_) => {
            eprintln!("rpi-queryd: --follow: the writer thread panicked");
            ExitCode::FAILURE
        }
    }
}

/// The companion to [`ServeStats::render`]'s lifetime-average rate: the
/// lifetime figure flattens bursts (satellite fix for
/// `queries_per_sec`), so when the interval emitter ran, the daemon also
/// reports the fastest single interval it observed.
fn report_peak_rate(opts: &Options, metrics: &rpi_query::QueryMetrics, stats: &ServeStats) {
    if opts.metrics_interval.is_none() {
        return;
    }
    eprintln!(
        "peak interval rate {:.0} queries/s over any {}s window (lifetime average {:.0} queries/s)",
        metrics.peak_interval_qps(),
        opts.metrics_interval.unwrap_or(0),
        stats.queries_per_sec(),
    );
}

/// The `--metrics-interval` emitter thread: every tick it syncs the
/// engine's derived gauges, snapshots the registry, and appends one
/// interval-diffed JSON line (counter deltas, current gauges, interval
/// latency percentiles) to stderr or the `--metrics-file`. Each
/// interval's query rate feeds [`rpi_query::QueryMetrics::note_interval_qps`].
struct MetricsEmitter {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl MetricsEmitter {
    fn spawn(
        engine_fn: impl Fn() -> Arc<QueryEngine> + Send + 'static,
        interval: std::time::Duration,
        mut file: Option<std::fs::File>,
    ) -> MetricsEmitter {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut prev = {
                    let engine = engine_fn();
                    engine.sync_obs();
                    let snap = engine.metrics().registry().snapshot();
                    (snap, engine.metrics().total_queries())
                };
                let mut prev_at = Instant::now();
                'ticks: loop {
                    // Sleep in short slices so shutdown stays prompt
                    // under long intervals.
                    let tick_end = prev_at + interval;
                    while Instant::now() < tick_end {
                        if stop.load(Ordering::Acquire) {
                            break 'ticks;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    let engine = engine_fn();
                    engine.sync_obs();
                    let m = engine.metrics();
                    let snap = m.registry().snapshot();
                    let queries = m.total_queries();
                    let elapsed = prev_at.elapsed();
                    prev_at = Instant::now();
                    m.note_interval_qps(
                        queries.saturating_sub(prev.1) as f64 / elapsed.as_secs_f64().max(1e-9),
                    );
                    let line = snap.delta_json(&prev.0, elapsed);
                    prev = (snap, queries);
                    match &mut file {
                        Some(f) => {
                            use std::io::Write as _;
                            let _ = writeln!(f, "{line}");
                            let _ = f.flush();
                        }
                        None => eprintln!("{line}"),
                    }
                }
            })
        };
        MetricsEmitter { stop, thread }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        let _ = self.thread.join();
    }
}

/// Executes a `--queries` file: blank lines and comments are skipped,
/// REPL commands work, parse and execution errors are reported to stderr
/// with their 1-based line number. Exits FAILURE if any line failed.
fn run_file(engine: &QueryEngine, path: &str, text: &str) -> ExitCode {
    let mut failed = false;
    for (i, line) in text.lines().enumerate() {
        match run_line(engine, line) {
            Outcome::Quit => break,
            Outcome::Ok => {}
            Outcome::Err(e) => {
                eprintln!("rpi-queryd: {path}:{}: {e}", i + 1);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

enum Outcome {
    Ok,
    Err(String),
    Quit,
}

fn count_kind(manifest: &rpi_store::Manifest, kind: rpi_store::SegmentKind) -> usize {
    manifest.segments.iter().filter(|s| s.kind == kind).count()
}

/// Executes one line through the same session semantics the TCP front
/// end uses ([`rpi_query::serve::session`]) — the stdin and network
/// paths must answer byte-identically, and sharing the classification
/// and rendering is what guarantees it.
fn run_line(engine: &QueryEngine, line: &str) -> Outcome {
    match classify_line(line) {
        Line::Skip => Outcome::Ok,
        // In a local session `shutdown` has nothing more to stop than
        // the session itself.
        Line::Control(Control::Quit) | Line::Control(Control::Shutdown) => Outcome::Quit,
        Line::Control(Control::Ping) => {
            println!("pong");
            Outcome::Ok
        }
        Line::Repl(cmd) => {
            println!("{}", repl_reply(engine, cmd));
            Outcome::Ok
        }
        Line::Query(req) => {
            // Stdin queries feed the same per-verb counters and latency
            // histograms as served ones, so `stats`/`metrics`/`slowlog`
            // are live in every session shape.
            let t0 = Instant::now();
            let result = engine.execute(&req);
            let elapsed = t0.elapsed();
            let m = engine.metrics();
            let v = req.query.verb_index();
            m.serve_queries_total[v].inc();
            m.serve_query_seconds[v].record(elapsed);
            if m.slow_threshold().is_some_and(|thr| elapsed >= thr) {
                m.push_slow(elapsed, 1, line.trim());
            }
            match result {
                Ok(resp) => {
                    println!("{}", rpi_query::render_response(&req, &resp));
                    Outcome::Ok
                }
                Err(e) => Outcome::Err(e.to_string()),
            }
        }
        Line::Bad(msg) => Outcome::Err(msg),
    }
}

/// The throughput report behind the `--bench` flag.
fn bench(exp: &Experiment, engine: &QueryEngine, max_shards: usize) {
    // Query workload: every (vantage, prefix) pair the world knows.
    let mut pairs: Vec<(Asn, Ipv4Prefix)> = Vec::new();
    for (vantage, _) in engine.vantages() {
        if let Some(t) = exp.lg_table(vantage) {
            pairs.extend(t.rows.keys().map(|&p| (vantage, p)));
        } else {
            let t = exp.collector_table(vantage);
            pairs.extend(t.rows.keys().map(|&p| (vantage, p)));
        }
    }
    assert!(!pairs.is_empty(), "bench world has no routes");
    println!(
        "\nworkload: {} distinct (vantage, prefix) queries",
        pairs.len()
    );

    // --- single-route queries ---
    const TARGET: usize = 400_000;
    let rounds = TARGET.div_ceil(pairs.len()).max(1);
    let t0 = Instant::now();
    let mut hits = 0usize;
    for _ in 0..rounds {
        for &(v, p) in &pairs {
            if engine.route_at(v, p).is_some() {
                hits += 1;
            }
        }
    }
    let total = rounds * pairs.len();
    let elapsed = t0.elapsed();
    let qps = total as f64 / elapsed.as_secs_f64();
    println!(
        "single route_at: {total} queries in {elapsed:.2?} → {qps:.0} queries/s ({hits} hits)"
    );

    // --- sa_status single queries ---
    let t0 = Instant::now();
    for &(v, p) in &pairs {
        std::hint::black_box(engine.sa_status(v, p));
    }
    let qps_sa = pairs.len() as f64 / t0.elapsed().as_secs_f64();
    println!("single sa_status: {qps_sa:.0} queries/s");

    // --- batched queries across shard counts ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nbatched route_at_batch (one engine per shard count, {cores} core(s)):");
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8, 16];
    shard_counts.retain(|&s| s <= max_shards.max(1));
    if !shard_counts.contains(&max_shards) {
        shard_counts.push(max_shards);
    }
    let batch: Vec<(Asn, Ipv4Prefix)> = pairs.iter().cycle().take(TARGET).copied().collect();
    for &n in &shard_counts {
        let mut e = QueryEngine::new(n);
        e.ingest_experiment(exp, "bench");
        let id = e.latest().expect("just ingested");
        let (answers, profile) = e.route_at_batch_profiled(id, &batch);
        let got = answers.iter().filter(|a| a.is_some()).count();
        println!(
            "  {n:>3} shards: {} queries in {:.2?} → {:.0} queries/s wall; \
             critical path {:.2?} → {:.0} queries/s with {n} cores \
             (shard speedup {:.1}×, {got} answered)",
            batch.len(),
            profile.wall,
            batch.len() as f64 / profile.wall.as_secs_f64(),
            profile.critical_path(),
            batch.len() as f64 / profile.critical_path().as_secs_f64(),
            profile.parallel_speedup(),
        );
    }

    // --- series ingest: full re-index vs incremental (COW overlays) ---
    // A dozen daily snapshots at ~1% route churn each (the paper's §6
    // series is 31 days of this).
    const SERIES_STEPS: usize = 12;
    let cfg = ChurnConfig {
        steps: SERIES_STEPS,
        flip_prob: 0.07,
        link_failure_prob: 0.01,
        ..ChurnConfig::daily(7)
    };
    let series = simulate_series(&exp.graph, &exp.truth, &exp.spec, &cfg);
    let events: usize = series.deltas().iter().map(|d| d.route_events()).sum();
    let report = rpi_query::measure_series_ingest(&series, &exp.inferred_graph, max_shards, 3);
    println!(
        "\nseries ingest ({SERIES_STEPS} snapshots, {events} route events):\n  \
         full re-index {:.2?}, incremental {:.2?} → {:.1}× faster; \
         {}/{} trie nodes shared ({:.1}%, {} KiB)",
        report.full,
        report.incremental,
        report.speedup(),
        report.stats.shared_nodes,
        report.stats.total_nodes,
        100.0 * report.stats.shared_ratio(),
        report.stats.shared_bytes / 1024,
    );

    // --- mixed protocol workload through execute_batch ---
    let reqs: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(vantage, prefix))| match i % 3 {
            0 => Query::Route { vantage, prefix }.at(Scope::Latest),
            1 => Query::SaStatus { vantage, prefix }.at(Scope::Latest),
            _ => Query::Resolve { vantage, prefix }.at(Scope::Latest),
        })
        .collect();
    let (results, profile) = engine.execute_batch_profiled(&reqs);
    let answered = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "\nmixed execute_batch (route/sa/resolve): {} requests in {:.2?} → {:.0} req/s wall \
         (critical path {:.2?}, lane speedup {:.1}×, {answered} ok)",
        reqs.len(),
        profile.wall,
        reqs.len() as f64 / profile.wall.as_secs_f64(),
        profile.critical_path(),
        profile.parallel_speedup(),
    );
}
