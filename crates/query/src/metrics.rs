//! The engine's unified metrics surface (`rpi-obs`-backed).
//!
//! One [`QueryMetrics`] is created per [`crate::QueryEngine`] and shared
//! behind an `Arc` by everything that observes that engine: the batch
//! planner, the TCP serve loop, the snapshot tier, the live writer and
//! its published epochs (which clone the `Arc`, so counts survive epoch
//! swaps the same way the ROV cache does), and the security verbs.
//!
//! **Every family is registered at construction** — per-verb families
//! for all thirteen grammar verbs, tier and live families even on
//! engines that never attach a tier — so the exposition's key set is a
//! function of the build, never of traffic. That is what makes the
//! `metrics` wire verb deterministic modulo sample values and the
//! `metrics names` schema listing goldenable.
//!
//! Naming convention: `rpi_<layer>_<name>` with unit suffixes
//! `_seconds` (histograms, exposed as summaries) and `_total`
//! (counters); dimensioned families carry one label (`verb="route"`,
//! `lane="shard"`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rpi_obs::{Counter, Gauge, Histogram, Registry};

/// Every grammar verb, in [`crate::Query`] declaration order — the
/// index space of the per-verb metric families (see
/// [`crate::Query::verb_index`]).
pub const VERBS: [&str; 13] = [
    "route",
    "resolve",
    "sa",
    "rel",
    "summary",
    "diff",
    "sa-history",
    "uptime",
    "top-sa",
    "persistence",
    "rov",
    "hijacks",
    "leaks",
];

/// How many slow-query entries the ring keeps (oldest evicted first).
pub const SLOWLOG_CAP: usize = 128;

/// One entry in the slow-query ring: a query segment whose wall time
/// crossed the `--slow-query-ms` threshold.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Wall time of the (possibly pipelined) segment.
    pub elapsed: Duration,
    /// Queries answered in the segment.
    pub queries: u64,
    /// The first query's wire form (truncated), locating the workload.
    pub first_line: String,
}

/// The engine-wide metrics registry plus typed handles into it.
///
/// Handles are plain `Arc`s onto lock-free atomics — recording on the
/// hot path is a bucket computation and a couple of relaxed
/// `fetch_add`s, never a lock.
#[derive(Debug)]
pub struct QueryMetrics {
    registry: Registry,
    origin: Instant,

    // planner
    /// `rpi_plan_batch_seconds` — wall time of one `execute_batch` plan.
    pub plan_batch_seconds: Arc<Histogram>,
    /// `rpi_plan_lane_seconds{lane="shard"}` — per-worker shard-lane busy time.
    pub plan_lane_shard_seconds: Arc<Histogram>,
    /// `rpi_plan_lane_seconds{lane="general"}` — general-lane busy time.
    pub plan_lane_general_seconds: Arc<Histogram>,

    // serve
    /// `rpi_serve_queries_total{verb=…}` — queries answered, by verb.
    pub serve_queries_total: [Arc<Counter>; VERBS.len()],
    /// `rpi_serve_query_seconds{verb=…}` — frame-complete → bytes-queued
    /// latency, by verb (pipelined queries record their segment's wall).
    pub serve_query_seconds: [Arc<Histogram>; VERBS.len()],
    /// `rpi_serve_accepted_total` — connections accepted.
    pub serve_accepted_total: Arc<Counter>,
    /// `rpi_serve_rejected_total` — connections turned away at capacity.
    pub serve_rejected_total: Arc<Counter>,
    /// `rpi_serve_errors_total` — in-band protocol errors.
    pub serve_errors_total: Arc<Counter>,
    /// `rpi_serve_shed_idle_total` — idle connections shed.
    pub serve_shed_idle_total: Arc<Counter>,
    /// `rpi_serve_bytes_in_total` / `rpi_serve_bytes_out_total`.
    pub serve_bytes_in_total: Arc<Counter>,
    /// See [`Self::serve_bytes_in_total`].
    pub serve_bytes_out_total: Arc<Counter>,
    /// `rpi_serve_slow_queries_total` — segments over the slow threshold.
    pub serve_slow_queries_total: Arc<Counter>,
    /// `rpi_serve_active_connections` — open connections right now.
    pub serve_active_connections: Arc<Gauge>,
    /// `rpi_serve_write_buf_bytes` — total buffered response bytes at
    /// the last sweep.
    pub serve_write_buf_bytes: Arc<Gauge>,
    /// `rpi_serve_write_buf_peak_bytes` — high-water mark of any single
    /// connection's write buffer.
    pub serve_write_buf_peak_bytes: Arc<Gauge>,
    /// `rpi_serve_sweep_seconds` — duration of poll-loop sweeps that did
    /// work (idle ticks are not recorded).
    pub serve_sweep_seconds: Arc<Histogram>,
    /// `rpi_serve_accept_to_first_byte_seconds` — accept → first request
    /// byte read.
    pub serve_accept_to_first_byte_seconds: Arc<Histogram>,

    // tier
    /// `rpi_tier_attaches_total` — segments attached to the tier.
    pub tier_attaches_total: Arc<Counter>,
    /// `rpi_tier_hydrations_total` — snapshot hydrations (chain members
    /// replayed into the hot set).
    pub tier_hydrations_total: Arc<Counter>,
    /// `rpi_tier_evictions_total` — hot-set evictions.
    pub tier_evictions_total: Arc<Counter>,
    /// `rpi_tier_cold_hits_total` — queries answered straight from cold
    /// segments.
    pub tier_cold_hits_total: Arc<Counter>,
    /// `rpi_tier_hot_snapshots` / `rpi_tier_total_snapshots` — residency
    /// (mirrored from [`crate::TierStats`] at sync points).
    pub tier_hot_snapshots: Arc<Gauge>,
    /// See [`Self::tier_hot_snapshots`].
    pub tier_total_snapshots: Arc<Gauge>,
    /// `rpi_tier_hydration_seconds` — full miss → resident wall time.
    pub tier_hydration_seconds: Arc<Histogram>,
    /// `rpi_tier_chain_replay_seconds` — one chain member's replay.
    pub tier_chain_replay_seconds: Arc<Histogram>,
    /// `rpi_tier_cold_hit_seconds` — cold-path point-query wall time.
    pub tier_cold_hit_seconds: Arc<Histogram>,

    // live
    /// `rpi_live_published_total` — epochs published.
    pub live_published_total: Arc<Counter>,
    /// `rpi_live_publish_seconds` — frame parse → epoch swap latency.
    pub live_publish_seconds: Arc<Histogram>,
    /// `rpi_live_frames_behind` — complete frames buffered but not yet
    /// published (follower lag).
    pub live_frames_behind: Arc<Gauge>,
    /// `rpi_live_epoch_age_seconds` — time since the last publication
    /// (derived at sync points).
    pub live_epoch_age_seconds: Arc<Gauge>,

    // sec
    /// `rpi_sec_queries_total{verb="rov"|"hijacks"|"leaks"}` — executed
    /// security queries (`rov` counts every point evaluation).
    pub sec_rov_total: Arc<Counter>,
    /// See [`Self::sec_rov_total`].
    pub sec_hijacks_total: Arc<Counter>,
    /// See [`Self::sec_rov_total`].
    pub sec_leaks_total: Arc<Counter>,
    /// `rpi_sec_scan_seconds{verb=…}` — hijack/leak detector sweep time.
    pub sec_scan_hijacks_seconds: Arc<Histogram>,
    /// See [`Self::sec_scan_hijacks_seconds`].
    pub sec_scan_leaks_seconds: Arc<Histogram>,
    /// `rpi_sec_roas` — loaded ROA count (mirrored).
    pub sec_roas: Arc<Gauge>,
    /// `rpi_sec_rov_cache_hits_total` / `…_misses_total` — mirrored from
    /// the ROV cache's own counters at sync points.
    pub sec_rov_cache_hits_total: Arc<Counter>,
    /// See [`Self::sec_rov_cache_hits_total`].
    pub sec_rov_cache_misses_total: Arc<Counter>,
    /// `rpi_sec_rov_cache_hit_ratio` — hits / (hits + misses), derived.
    pub sec_rov_cache_hit_ratio: Arc<Gauge>,

    /// Nanoseconds since `origin` of the last epoch publication (0 =
    /// never), feeding the epoch-age gauge.
    last_publish_nanos: AtomicU64,
    /// Peak interval query rate (f64 bits), maintained by the
    /// `--metrics-interval` emitter.
    peak_interval_qps: AtomicU64,
    /// Slow-segment threshold in milliseconds (0 = disabled).
    slow_threshold_ms: AtomicU64,
    slow_ring: Mutex<VecDeque<SlowEntry>>,
}

impl Default for QueryMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryMetrics {
    /// A registry with every family pre-registered (see module docs).
    pub fn new() -> QueryMetrics {
        let r = Registry::new();
        let verb_label = |v: &str| format!("verb=\"{v}\"");
        QueryMetrics {
            plan_batch_seconds: r.histogram("rpi_plan_batch_seconds", None),
            plan_lane_shard_seconds: r.histogram("rpi_plan_lane_seconds", Some("lane=\"shard\"")),
            plan_lane_general_seconds: r
                .histogram("rpi_plan_lane_seconds", Some("lane=\"general\"")),
            serve_queries_total: std::array::from_fn(|i| {
                r.counter("rpi_serve_queries_total", Some(&verb_label(VERBS[i])))
            }),
            serve_query_seconds: std::array::from_fn(|i| {
                r.histogram("rpi_serve_query_seconds", Some(&verb_label(VERBS[i])))
            }),
            serve_accepted_total: r.counter("rpi_serve_accepted_total", None),
            serve_rejected_total: r.counter("rpi_serve_rejected_total", None),
            serve_errors_total: r.counter("rpi_serve_errors_total", None),
            serve_shed_idle_total: r.counter("rpi_serve_shed_idle_total", None),
            serve_bytes_in_total: r.counter("rpi_serve_bytes_in_total", None),
            serve_bytes_out_total: r.counter("rpi_serve_bytes_out_total", None),
            serve_slow_queries_total: r.counter("rpi_serve_slow_queries_total", None),
            serve_active_connections: r.gauge("rpi_serve_active_connections", None),
            serve_write_buf_bytes: r.gauge("rpi_serve_write_buf_bytes", None),
            serve_write_buf_peak_bytes: r.gauge("rpi_serve_write_buf_peak_bytes", None),
            serve_sweep_seconds: r.histogram("rpi_serve_sweep_seconds", None),
            serve_accept_to_first_byte_seconds: r
                .histogram("rpi_serve_accept_to_first_byte_seconds", None),
            tier_attaches_total: r.counter("rpi_tier_attaches_total", None),
            tier_hydrations_total: r.counter("rpi_tier_hydrations_total", None),
            tier_evictions_total: r.counter("rpi_tier_evictions_total", None),
            tier_cold_hits_total: r.counter("rpi_tier_cold_hits_total", None),
            tier_hot_snapshots: r.gauge("rpi_tier_hot_snapshots", None),
            tier_total_snapshots: r.gauge("rpi_tier_total_snapshots", None),
            tier_hydration_seconds: r.histogram("rpi_tier_hydration_seconds", None),
            tier_chain_replay_seconds: r.histogram("rpi_tier_chain_replay_seconds", None),
            tier_cold_hit_seconds: r.histogram("rpi_tier_cold_hit_seconds", None),
            live_published_total: r.counter("rpi_live_published_total", None),
            live_publish_seconds: r.histogram("rpi_live_publish_seconds", None),
            live_frames_behind: r.gauge("rpi_live_frames_behind", None),
            live_epoch_age_seconds: r.gauge("rpi_live_epoch_age_seconds", None),
            sec_rov_total: r.counter("rpi_sec_queries_total", Some("verb=\"rov\"")),
            sec_hijacks_total: r.counter("rpi_sec_queries_total", Some("verb=\"hijacks\"")),
            sec_leaks_total: r.counter("rpi_sec_queries_total", Some("verb=\"leaks\"")),
            sec_scan_hijacks_seconds: r.histogram("rpi_sec_scan_seconds", Some("verb=\"hijacks\"")),
            sec_scan_leaks_seconds: r.histogram("rpi_sec_scan_seconds", Some("verb=\"leaks\"")),
            sec_roas: r.gauge("rpi_sec_roas", None),
            sec_rov_cache_hits_total: r.counter("rpi_sec_rov_cache_hits_total", None),
            sec_rov_cache_misses_total: r.counter("rpi_sec_rov_cache_misses_total", None),
            sec_rov_cache_hit_ratio: r.gauge("rpi_sec_rov_cache_hit_ratio", None),
            last_publish_nanos: AtomicU64::new(0),
            peak_interval_qps: AtomicU64::new(0f64.to_bits()),
            slow_threshold_ms: AtomicU64::new(0),
            slow_ring: Mutex::new(VecDeque::new()),
            origin: Instant::now(),
            registry: r,
        }
    }

    /// The underlying registry (exposition and interval snapshots).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Per-shard instances of the serve-loop gauges (`shard="N"` labels
    /// on `rpi_serve_active_connections` / `rpi_serve_write_buf_bytes`),
    /// registered by a multi-thread server at startup. Labeled instances
    /// join the *existing* families, so the goldenable `metrics names`
    /// schema (one line per family) is unchanged and the merged
    /// exposition carries both the aggregate and the per-shard samples.
    pub fn shard_gauges(&self, shard: usize) -> (Arc<Gauge>, Arc<Gauge>) {
        let label = format!("shard=\"{shard}\"");
        (
            self.registry
                .gauge("rpi_serve_active_connections", Some(&label)),
            self.registry
                .gauge("rpi_serve_write_buf_bytes", Some(&label)),
        )
    }

    /// Total queries served across every verb.
    pub fn total_queries(&self) -> u64 {
        self.serve_queries_total.iter().map(|c| c.get()).sum()
    }

    /// All per-verb latency snapshots merged into one distribution.
    pub fn query_latency_overall(&self) -> rpi_obs::HistSnapshot {
        let mut all = rpi_obs::HistSnapshot::empty();
        for h in &self.serve_query_seconds {
            all.merge(&h.snapshot());
        }
        all
    }

    /// Stamp an epoch publication (feeds the epoch-age gauge).
    pub fn note_publish(&self) {
        let nanos = self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.last_publish_nanos.store(nanos.max(1), Relaxed);
    }

    /// Seconds since the last publication (0.0 before the first).
    pub fn epoch_age_secs(&self) -> f64 {
        match self.last_publish_nanos.load(Relaxed) {
            0 => 0.0,
            at => {
                (self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64).saturating_sub(at)
                    as f64
                    / 1e9
            }
        }
    }

    /// Raise the peak interval query rate if `qps` beats it.
    pub fn note_interval_qps(&self, qps: f64) {
        self.peak_interval_qps
            .fetch_max(qps.max(0.0).to_bits(), Relaxed);
    }

    /// Highest interval-local query rate observed by the emitter.
    pub fn peak_interval_qps(&self) -> f64 {
        f64::from_bits(self.peak_interval_qps.load(Relaxed))
    }

    /// Enable (ms > 0) or disable the slow-query ring.
    pub fn set_slow_threshold_ms(&self, ms: u64) {
        self.slow_threshold_ms.store(ms, Relaxed);
    }

    /// The active slow threshold, if enabled.
    pub fn slow_threshold(&self) -> Option<Duration> {
        match self.slow_threshold_ms.load(Relaxed) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    /// Push one slow segment into the bounded ring (caller has already
    /// checked the threshold, so the disabled path costs one load).
    pub fn push_slow(&self, elapsed: Duration, queries: u64, first_line: &str) {
        self.serve_slow_queries_total.inc();
        let mut line = first_line.to_string();
        if line.len() > 120 {
            line.truncate(120);
            line.push('…');
        }
        let mut ring = self.slow_ring.lock().unwrap();
        if ring.len() == SLOWLOG_CAP {
            ring.pop_front();
        }
        ring.push_back(SlowEntry {
            elapsed,
            queries,
            first_line: line,
        });
    }

    /// The `slowlog` REPL listing: newest entries last.
    pub fn render_slowlog(&self) -> String {
        let thr = self.slow_threshold_ms.load(Relaxed);
        if thr == 0 {
            return "slowlog: disabled (start with --slow-query-ms N to record)".to_string();
        }
        let ring = self.slow_ring.lock().unwrap();
        if ring.is_empty() {
            return format!("slowlog: empty (threshold {thr} ms, nothing crossed it)");
        }
        let total = self.serve_slow_queries_total.get();
        let mut out = format!(
            "slowlog: {} of {} slow segments retained (threshold {} ms, cap {}):",
            ring.len(),
            total,
            thr,
            SLOWLOG_CAP
        );
        for e in ring.iter() {
            out.push_str(&format!(
                "\n  {:>9.3} ms  {:>6} queries  {}",
                e.elapsed.as_secs_f64() * 1e3,
                e.queries,
                e.first_line
            ));
        }
        out
    }

    /// The `stats` REPL listing: a fixed-shape table of per-verb and
    /// per-stage latency percentiles (rows never depend on traffic;
    /// values do).
    pub fn render_stats(&self) -> String {
        let mut out = String::from("per-verb latency (count, p50/p90/p99/p999 ms):");
        for (i, verb) in VERBS.iter().enumerate() {
            let snap = self.serve_query_seconds[i].snapshot();
            out.push_str(&format!(
                "\n  {:<12} {:>9}  {}",
                verb,
                self.serve_queries_total[i].get(),
                fmt_quantiles(&snap)
            ));
        }
        let overall = self.query_latency_overall();
        out.push_str(&format!(
            "\n  {:<12} {:>9}  {}",
            "(all verbs)",
            overall.count(),
            fmt_quantiles(&overall)
        ));
        out.push_str("\nstages (count, p50/p90/p99/p999 ms):");
        let stages: [(&str, &Histogram); 9] = [
            ("plan.batch", &self.plan_batch_seconds),
            ("plan.shard-lane", &self.plan_lane_shard_seconds),
            ("plan.general-lane", &self.plan_lane_general_seconds),
            ("serve.sweep", &self.serve_sweep_seconds),
            ("serve.first-byte", &self.serve_accept_to_first_byte_seconds),
            ("tier.hydration", &self.tier_hydration_seconds),
            ("tier.chain-replay", &self.tier_chain_replay_seconds),
            ("tier.cold-hit", &self.tier_cold_hit_seconds),
            ("live.publish", &self.live_publish_seconds),
        ];
        for (name, hist) in stages {
            let snap = hist.snapshot();
            out.push_str(&format!(
                "\n  {:<17} {:>9}  {}",
                name,
                snap.count(),
                fmt_quantiles(&snap)
            ));
        }
        out.push_str(&format!(
            "\ngauges: write-buf {} B (peak {} B), active conns {}, frames behind {}, epoch age {:.1}s, rov hit ratio {:.3}",
            self.serve_write_buf_bytes.get() as u64,
            self.serve_write_buf_peak_bytes.get() as u64,
            self.serve_active_connections.get() as u64,
            self.live_frames_behind.get() as u64,
            self.live_epoch_age_seconds.get(),
            self.sec_rov_cache_hit_ratio.get(),
        ));
        out
    }
}

fn fmt_quantiles(snap: &rpi_obs::HistSnapshot) -> String {
    let ms = |q: f64| snap.quantile(q) as f64 / 1e6;
    format!(
        "{:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        ms(0.5),
        ms(0.9),
        ms(0.99),
        ms(0.999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Verb order must track the proto enum (the per-verb arrays are
    /// indexed by `Query::verb_index`).
    #[test]
    fn verb_table_matches_proto() {
        use crate::proto::{Query, Scope};
        let qs: Vec<(usize, crate::proto::QueryRequest)> = crate::proto::parse_script(
            "route AS1 1.0.0.0/8\nresolve AS1 1.0.0.0/8\nsa AS1 1.0.0.0/8\nrel AS1 AS2\n\
             summary AS1\ndiff @1..2\nsa-history AS1 1.0.0.0/8\nuptime AS1\ntop-sa AS1 3\n\
             persistence AS1 1.0.0.0/8\nrov AS1 1.0.0.0/8\nhijacks\nleaks\n",
        )
        .expect("all verbs parse");
        assert_eq!(qs.len(), VERBS.len());
        for (i, (_, req)) in qs.iter().enumerate() {
            assert_eq!(req.query.verb(), VERBS[i], "verb table out of order");
            assert_eq!(req.query.verb_index(), i, "verb_index out of order");
        }
        let _ = Query::Diff.at(Scope::Latest); // keep the imports honest
    }

    #[test]
    fn schema_is_stable_and_sorted() {
        let m = QueryMetrics::new();
        let schema = m.registry().schema();
        let lines: Vec<&str> = schema.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "schema must render sorted");
        for family in [
            "rpi_plan_batch_seconds summary",
            "rpi_serve_queries_total counter",
            "rpi_serve_query_seconds summary",
            "rpi_tier_hydration_seconds summary",
            "rpi_live_publish_seconds summary",
            "rpi_sec_queries_total counter",
            "rpi_sec_rov_cache_hit_ratio gauge",
        ] {
            assert!(schema.contains(family), "missing family: {family}");
        }
        // Two fresh registries expose the identical schema.
        assert_eq!(schema, QueryMetrics::new().registry().schema());
    }

    #[test]
    fn slowlog_ring_is_bounded() {
        let m = QueryMetrics::new();
        assert!(m.render_slowlog().contains("disabled"));
        m.set_slow_threshold_ms(5);
        assert!(m.render_slowlog().contains("empty"));
        for i in 0..(SLOWLOG_CAP + 10) {
            m.push_slow(
                Duration::from_millis(6),
                1,
                &format!("route AS{i} 1.0.0.0/8"),
            );
        }
        let dump = m.render_slowlog();
        assert!(
            dump.starts_with(&format!(
                "slowlog: {} of {} slow segments retained",
                SLOWLOG_CAP,
                SLOWLOG_CAP + 10
            )),
            "{dump}"
        );
        assert!(!dump.contains("route AS0 "), "oldest entries evicted");
    }
}
