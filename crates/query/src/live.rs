//! Serve while ingesting (**rpi-live**).
//!
//! A single writer thread tails a [`bgp_sim::stream`] delta-event file,
//! applies each frame through the same incremental indexing path the
//! offline engine uses, and **publishes** the grown world as a fresh
//! epoch — an immutable [`QueryEngine`] behind an `Arc` that readers
//! load once per batch. The protocol is epoch-style publication:
//!
//! * Readers never lock against the writer. [`LiveHandle::current`] is
//!   one `Arc` clone under a reader lock held for nanoseconds; the
//!   engine it returns is frozen (its `horizon` pins every scope
//!   resolution to the snapshots published as of that epoch), so a
//!   whole `execute_batch` — or a REPL listing — sees one consistent
//!   world, never a torn one.
//! * The writer builds snapshot N+1 completely — indexed, spilled to an
//!   rpi-store segment, attached to the shared tier — **before**
//!   swapping the epoch in. A reader that loaded epoch N keeps
//!   answering from epoch N; the next batch sees N+1.
//! * Memory stays bounded: the shared tier's hot set keeps the most
//!   recent `--window` snapshots hydrated; older ones fall back to
//!   their mapped spill segments and stay queryable cold (the PR 7 tier
//!   layer), so `@<id>` history queries span the hot/spilled boundary
//!   transparently.
//!
//! The contract the differential suite (`crates/query/tests/live.rs`)
//! holds: a live engine fed frame by frame renders **byte-identical**
//! responses to an offline engine built from the same events in one
//! shot, at every snapshot, across every protocol verb.

use std::collections::HashMap;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use bgp_sim::stream::{next_step, read_header, StreamFrame, StreamStep};
use bgp_sim::SimOutput;
use bgp_types::codec::CodecError;
use bgp_types::Asn;
use net_topology::{AsGraph, CustomerCone};
use rpi_mmap::Mmap;
use rpi_store::{write_segment, SegmentKind, StoreError, SEG_FLAG_KEYFRAME};

use crate::archive::{
    delta_plan, encode_delta, encode_full, read_mapped_directory, ArchiveInfo, SegmentMeta,
};
use crate::engine::QueryEngine;
use crate::intern::WorldInterner;
use crate::snapshot::{Provenance, Snapshot, SnapshotId};
use crate::tier::{Tier, TierSnap};

/// What can go wrong while following a live stream.
#[derive(Debug)]
pub enum LiveError {
    /// The stream ended mid-frame: the bytes from `offset` onwards are
    /// an incomplete frame that was never applied (a publication is all
    /// or nothing — no half-applied snapshot exists).
    Truncated {
        /// Absolute byte offset where the incomplete frame starts.
        offset: usize,
    },
    /// The stream bytes are malformed.
    Stream {
        /// Absolute byte offset of the malformed encoding.
        offset: usize,
        /// What was expected there.
        what: String,
    },
    /// Writing or mapping a spill segment failed.
    Store(StoreError),
    /// Reading the followed file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Truncated { offset } => {
                write!(f, "live stream ended mid-frame at byte {offset}")
            }
            LiveError::Stream { offset, what } => {
                write!(f, "malformed live stream at byte {offset}: {what}")
            }
            LiveError::Store(e) => write!(f, "spill segment: {e}"),
            LiveError::Io(e) => write!(f, "reading stream: {e}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> LiveError {
        LiveError::Store(e)
    }
}

impl From<std::io::Error> for LiveError {
    fn from(e: std::io::Error) -> LiveError {
        LiveError::Io(e)
    }
}

fn stream_err(e: CodecError) -> LiveError {
    let what = match &e {
        CodecError::Truncated { wanted, .. } => format!("truncated (wanted {wanted} more bytes)"),
        CodecError::Varint { .. } => "malformed varint".to_string(),
        CodecError::Invalid { what, .. } => what.to_string(),
    };
    LiveError::Stream {
        offset: e.offset(),
        what,
    }
}

/// Knobs of the live publication path.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Snapshots kept hydrated in memory (the hot window). Older
    /// snapshots drop to their spill segments and answer cold.
    pub window: usize,
    /// Spill keyframe cadence: every `keyframe_every`-th segment is a
    /// self-contained full segment the cold chain walk can anchor on.
    pub keyframe_every: usize,
}

impl Default for LiveOptions {
    fn default() -> LiveOptions {
        LiveOptions {
            window: 4,
            keyframe_every: 4,
        }
    }
}

/// The reader side of the publication protocol: the current epoch.
///
/// Cheap to share (`Arc`) and cheap to read — [`Self::current`] clones
/// one `Arc` under a read lock the writer takes only for the pointer
/// swap, so readers never wait on a publication in progress.
#[derive(Debug)]
pub struct LiveHandle {
    epoch: RwLock<Arc<QueryEngine>>,
    published: AtomicU64,
    ended: AtomicBool,
}

impl LiveHandle {
    /// A handle whose epoch 0 is `engine` — an empty engine carrying the
    /// serving configuration (shard count, ROA table). The writer grows
    /// the world from there.
    pub fn new(mut engine: QueryEngine) -> Arc<LiveHandle> {
        engine.horizon = Some(0);
        Arc::new(LiveHandle {
            epoch: RwLock::new(Arc::new(engine)),
            published: AtomicU64::new(0),
            ended: AtomicBool::new(false),
        })
    }

    /// The current epoch. Every query of a batch — and every listing —
    /// should run against one loaded epoch so it observes one world.
    pub fn current(&self) -> Arc<QueryEngine> {
        Arc::clone(&self.epoch.read().expect("live epoch poisoned"))
    }

    /// Snapshots published so far (monotone; `Acquire` pairs with the
    /// writer's publication store).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Whether the writer saw the stream's end marker.
    pub fn ended(&self) -> bool {
        self.ended.load(Ordering::Acquire)
    }
}

/// The writer side: applies stream frames, spills segments, publishes
/// epochs. Single-owner — exactly one writer per [`LiveHandle`].
pub struct LiveWriter {
    handle: Arc<LiveHandle>,
    tier: Arc<Tier>,
    /// The base engine's metrics, shared by every published epoch:
    /// publication latency/counts and the follower-lag gauge land here.
    metrics: Arc<crate::metrics::QueryMetrics>,
    spill: PathBuf,
    opts: LiveOptions,
    n_shards: usize,
    interner: WorldInterner,
    cones: HashMap<Asn, CustomerCone>,
    oracle: AsGraph,
    prev_out: SimOutput,
    prev_snap: Option<Arc<Snapshot>>,
    metas: Vec<SegmentMeta>,
    last_anchor: Option<usize>,
    count: u32,
}

impl LiveWriter {
    /// Opens the writer against `handle`'s epoch-0 configuration with
    /// the stream header's relationship `oracle`. Spill segments go to
    /// `spill` (created if missing).
    pub fn open(
        handle: Arc<LiveHandle>,
        oracle: AsGraph,
        spill: &Path,
        opts: LiveOptions,
    ) -> Result<LiveWriter, LiveError> {
        std::fs::create_dir_all(spill)?;
        let base = handle.current();
        debug_assert_eq!(base.snapshot_count(), 0, "live handles start empty");
        Ok(LiveWriter {
            tier: Arc::new(Tier::new_live(opts.window, base.metrics())),
            metrics: base.metrics_arc(),
            spill: spill.to_path_buf(),
            n_shards: base.n_shards,
            interner: base.interner.clone(),
            cones: HashMap::new(),
            oracle,
            prev_out: SimOutput::default(),
            prev_snap: None,
            metas: Vec::new(),
            last_anchor: None,
            count: 0,
            opts,
            handle,
        })
    }

    /// Snapshots published by this writer.
    pub fn published(&self) -> u64 {
        self.count as u64
    }

    /// Applies one stream frame: index the grown world incrementally,
    /// spill it as an rpi-store segment, attach the segment to the
    /// shared tier, and only then publish the new epoch. A reader
    /// holding the previous epoch is never blocked and never sees the
    /// snapshot until it is fully queryable.
    pub fn publish_frame(&mut self, frame: &StreamFrame) -> Result<SnapshotId, LiveError> {
        let publish_start = std::time::Instant::now();
        let out = frame.apply(&self.prev_out);
        let same_oracle = frame.oracle.is_none();
        if let Some(g) = &frame.oracle {
            self.oracle = g.clone();
        }
        let i = self.count as usize;
        let id = SnapshotId(self.count);

        // Index exactly as the offline incremental path would: the
        // frame's delta is what `output_delta` computes between the same
        // two outputs, so the snapshots come out byte-identical.
        let mut snap = match &self.prev_snap {
            None => {
                self.cones.clear();
                Snapshot::from_output(
                    id,
                    &frame.label,
                    &out,
                    &self.oracle,
                    &mut self.interner,
                    self.n_shards,
                )
            }
            Some(prev) => Snapshot::from_output_incremental(
                id,
                &frame.label,
                prev,
                &frame.delta,
                &out,
                &self.oracle,
                same_oracle,
                &mut self.interner,
                &mut self.cones,
                self.n_shards,
            ),
        };
        snap.interned_watermark = self.interner.sizes();
        if self.prev_snap.is_some() {
            snap.provenance = Provenance::Delta(Arc::new(frame.delta.clone()));
        }
        let snap = Arc::new(snap);

        // Spill: same segment policy as `save_archive` — delta when
        // cleanly replayable, full otherwise, a self-contained keyframe
        // on cadence so cold chain walks stay short.
        let prev = self.prev_snap.as_deref();
        let force_keyframe = match self.last_anchor {
            Some(anchor) => i - anchor >= self.opts.keyframe_every.max(1),
            None => false,
        };
        let plan = if force_keyframe {
            None
        } else {
            prev.and_then(|p| delta_plan(&snap, p))
        };
        let (kind, payload, standalone) = match plan {
            Some(delta) => (
                SegmentKind::Delta,
                encode_delta(
                    &snap,
                    prev.expect("delta implies prev"),
                    delta,
                    &self.interner,
                ),
                false,
            ),
            None => {
                let (payload, standalone) = encode_full(&snap, prev, force_keyframe);
                (SegmentKind::Full, payload, standalone)
            }
        };
        if standalone {
            self.last_anchor = Some(i);
        }
        let file = format!("snap-{i:04}.seg");
        let mut entry = write_segment(&self.spill, &file, kind, &frame.label, &payload)?;
        if standalone {
            entry.flags |= SEG_FLAG_KEYFRAME;
        }
        let path = self.spill.join(&file);
        let map = Mmap::map(&path).map_err(|source| StoreError::Io { path, source })?;
        let dir = match kind {
            SegmentKind::Full => {
                read_mapped_directory(&map, self.interner.sizes().0, self.n_shards)
                    .map_err(stream_err)?
                    .map(|(d, _, _)| d)
            }
            _ => None,
        };
        let ts = TierSnap::new(
            file,
            kind,
            frame.label.clone(),
            entry.crc32,
            map,
            dir,
            standalone,
            // Just written and checksummed — no lazy re-verify needed.
            true,
        );
        let count = self
            .tier
            .append(ts, self.interner.sizes(), Arc::clone(&snap));
        // Manifest-style indices: slot 0 is reserved for the symbols
        // segment a finished archive would carry.
        self.metas.push(SegmentMeta::from_entry(i + 1, &entry));
        self.count = count as u32;
        self.prev_out = out;
        self.prev_snap = Some(snap);

        // Publish: swap the fully-built epoch in. The write lock guards
        // only the pointer swap.
        let epoch = Arc::new(self.epoch_engine());
        *self.handle.epoch.write().expect("live epoch poisoned") = epoch;
        self.handle
            .published
            .store(self.count as u64, Ordering::Release);
        self.metrics.live_published_total.inc();
        self.metrics
            .live_publish_seconds
            .record(publish_start.elapsed());
        self.metrics.note_publish();
        Ok(id)
    }

    /// Marks the stream as cleanly ended.
    pub fn end(&self) {
        self.handle.ended.store(true, Ordering::Release);
    }

    /// A frozen engine exposing exactly the snapshots published so far.
    fn epoch_engine(&self) -> QueryEngine {
        let base = self.handle.current();
        let mut e = QueryEngine::new(self.n_shards);
        e.interner = self.interner.clone();
        e.roas = Arc::clone(&base.roas);
        e.rov_cache = Arc::clone(&base.rov_cache);
        e.metrics = Arc::clone(&base.metrics);
        e.tier = Some(Arc::clone(&self.tier));
        e.horizon = Some(self.count);
        e.archive = Some(ArchiveInfo {
            dir: self.spill.clone(),
            symbols: SegmentMeta {
                index: 0,
                kind: SegmentKind::Symbols,
                file: "symbols.seg".to_string(),
                // The live interner lives in memory; a symbols segment
                // exists only once the stream is archived.
                bytes: 0,
                crc32: 0,
                label: String::new(),
                keyframe: false,
            },
            snapshots: self.metas.clone(),
            roas: None,
        });
        e
    }
}

/// How a follow run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowEnd {
    /// The stream's end marker was reached.
    EndMarker,
    /// The stop flag was raised (tail mode only).
    Stopped,
}

/// What a follow run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowReport {
    /// Snapshots published.
    pub snapshots: u64,
    /// Why the run returned.
    pub end: FollowEnd,
}

enum FollowMode<'a> {
    /// Keep re-reading the growing file until the end marker or `stop`.
    Tail {
        poll: Duration,
        stop: &'a AtomicBool,
    },
    /// The file is complete: EOF mid-frame is a truncation error.
    Drain,
}

/// Follows the structured delta stream at `path` (tail mode): applies
/// every frame through `handle`'s writer as it appears, publishing an
/// epoch per snapshot, until the end marker or `stop` is raised.
/// `on_publish` runs after each publication with the new snapshot count
/// and label.
pub fn follow_stream(
    path: &Path,
    handle: Arc<LiveHandle>,
    spill: &Path,
    opts: LiveOptions,
    poll: Duration,
    stop: &AtomicBool,
    on_publish: impl FnMut(u64, &str),
) -> Result<FollowReport, LiveError> {
    run_stream(
        path,
        handle,
        spill,
        opts,
        FollowMode::Tail { poll, stop },
        on_publish,
    )
}

/// Applies the **complete** stream at `path` in one pass. The file must
/// carry the end marker: hitting EOF mid-frame is a
/// [`LiveError::Truncated`] naming the byte offset where the incomplete
/// frame starts — the partial frame is never applied.
pub fn drain_stream(
    path: &Path,
    handle: Arc<LiveHandle>,
    spill: &Path,
    opts: LiveOptions,
    on_publish: impl FnMut(u64, &str),
) -> Result<FollowReport, LiveError> {
    run_stream(path, handle, spill, opts, FollowMode::Drain, on_publish)
}

fn run_stream(
    path: &Path,
    handle: Arc<LiveHandle>,
    spill: &Path,
    opts: LiveOptions,
    mode: FollowMode<'_>,
    mut on_publish: impl FnMut(u64, &str),
) -> Result<FollowReport, LiveError> {
    let mut file = std::fs::File::open(path)?;
    let mut buf: Vec<u8> = Vec::new();
    let mut parsed = 0usize;
    let mut writer: Option<LiveWriter> = None;
    let mut published = 0u64;

    // Pulls whatever the file has grown by; `Ok(0)` means no new bytes.
    let mut refill = |buf: &mut Vec<u8>| -> Result<usize, LiveError> {
        let before = buf.len();
        file.read_to_end(buf)?;
        Ok(buf.len() - before)
    };
    refill(&mut buf)?;

    loop {
        // Parse as far as the buffered bytes go.
        let mut progressed = false;
        if writer.is_none() {
            if let Some((oracle, next)) = read_header(&buf).map_err(stream_err)? {
                writer = Some(LiveWriter::open(
                    Arc::clone(&handle),
                    oracle,
                    spill,
                    opts.clone(),
                )?);
                parsed = next;
                progressed = true;
            }
        }
        if let Some(w) = &mut writer {
            // First collect every complete frame already buffered (up to
            // a bound, so a huge drain never holds the whole stream as
            // parsed frames at once): the backlog between what the
            // producer wrote and what we've published is the follower's
            // lag, surfaced as the `rpi_live_frames_behind` gauge and
            // drained frame by frame below.
            const PENDING_CAP: usize = 256;
            let mut pending = Vec::new();
            let mut ended = false;
            while pending.len() < PENDING_CAP {
                match next_step(&buf, parsed).map_err(stream_err)? {
                    StreamStep::NeedMore => break,
                    StreamStep::Frame(frame, next) => {
                        pending.push(frame);
                        parsed = next;
                    }
                    StreamStep::End(_) => {
                        ended = true;
                        break;
                    }
                }
            }
            let mut behind = pending.len() as u64;
            w.metrics.live_frames_behind.set_u64(behind);
            for frame in &pending {
                w.publish_frame(frame)?;
                published = w.published();
                behind -= 1;
                w.metrics.live_frames_behind.set_u64(behind);
                on_publish(published, &frame.label);
                progressed = true;
            }
            if ended {
                w.end();
                return Ok(FollowReport {
                    snapshots: published,
                    end: FollowEnd::EndMarker,
                });
            }
            if pending.len() == PENDING_CAP {
                // The buffer may hold more complete frames; go parse
                // them before consulting the refill/truncation logic.
                continue;
            }
        }

        // Out of buffered bytes mid-frame (or mid-header): wait for the
        // tail to grow, or call the stream truncated.
        match &mode {
            FollowMode::Drain => {
                if refill(&mut buf)? == 0 {
                    return Err(LiveError::Truncated { offset: parsed });
                }
            }
            FollowMode::Tail { poll, stop } => {
                if stop.load(Ordering::Acquire) {
                    return Ok(FollowReport {
                        snapshots: published,
                        end: FollowEnd::Stopped,
                    });
                }
                if refill(&mut buf)? == 0 && !progressed {
                    std::thread::sleep(*poll);
                }
            }
        }
    }
}
