//! One ingested snapshot: sharded per-vantage route tables plus the
//! precomputed `rpi_core` analyses.
//!
//! A snapshot is built once at ingest time and never mutated; every query
//! against it is a hash/trie lookup. Routes are stored interned
//! ([`crate::WorldInterner`]), so a snapshot of a `Small` world is a few
//! hundred KiB and diffing two snapshots is integer work.
//!
//! ## Two ways to build one
//!
//! [`Snapshot::from_output`] indexes a simulated output from scratch.
//! [`Snapshot::from_output_incremental`] instead starts from the
//! *predecessor* snapshot and a structured [`bgp_sim::OutputDelta`]: the
//! shard tries are copy-on-write overlays ([`bgp_types::CowTrie`]) that
//! physically share every untouched subtrie with the predecessor, the
//! relationship/SA/summary caches are `Arc`-shared per vantage and only
//! the touched vantage×prefix entries are re-derived, and the engine-wide
//! interner stays append-only so symbols never move. The two paths are
//! differentially tested (`tests/incremental_diff.rs`): every query must
//! render byte-identically regardless of which path built the snapshot.

use std::collections::HashMap;
use std::sync::Arc;

use bgp_sim::{CollectorView, LgView, OutputDelta, SimOutput, VantageDelta};
use bgp_types::{Asn, CowTrie, Ipv4Prefix, Relationship};
use net_topology::{AsGraph, CustomerCone};
use rpi_core::community::{infer_communities, CommunityParams};
use rpi_core::export_policy::sa_prefixes;
use rpi_core::import_policy::lg_typicality;
use rpi_core::view::BestTable;

use crate::intern::{AsnSym, Interning, PrefixSym, WorldInterner};

/// Index of a snapshot inside its engine, in ingestion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub u32);

impl SnapshotId {
    /// The id as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of view a vantage contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VantageKind {
    /// Full Looking-Glass view: LOCAL_PREF and communities visible, so all
    /// the paper's analyses are precomputed for it.
    LookingGlass,
    /// Collector peer: best paths only; SA analysis is available, import
    /// typicality and community semantics are not.
    CollectorPeer,
}

/// A best route in compact interned form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CompactRoute {
    /// Neighbor the route was learned from.
    pub next_hop: AsnSym,
    /// Interned AS path, next-hop first, origin last.
    pub path: Box<[AsnSym]>,
}

/// One vantage's best-route table, sharded by prefix. Tables are
/// `Arc`-shared between snapshots: an incremental ingest clones the
/// whole `Arc` for untouched vantages, and builds a copy-on-write
/// overlay (shards cloned in O(1), only touched spines copied) for
/// churned ones.
#[derive(Debug)]
pub(crate) struct VantageTable {
    pub kind: VantageKind,
    /// `shards[shard_of(prefix, n)]` holds the prefix's route.
    pub shards: Vec<CowTrie<CompactRoute>>,
    pub route_count: usize,
}

/// Deterministic shard assignment for a prefix (splitmix-style avalanche
/// over the canonical bits + length, so /8s and /24s spread evenly).
pub(crate) fn shard_of(prefix: Ipv4Prefix, n_shards: usize) -> usize {
    let mut z = ((prefix.bits() as u64) << 8) | prefix.len() as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as usize % n_shards
}

/// How a snapshot was built — the archive's full-vs-delta policy input.
///
/// A snapshot built incrementally keeps the structured [`OutputDelta`]
/// it was patched from: `rpi-store` can then persist the snapshot as a
/// compact **delta segment** (the events, not the tables) and replay it
/// through the same patching machinery on load. Snapshots indexed from
/// scratch carry no delta and always serialize as **full segments**.
#[derive(Debug, Clone)]
pub(crate) enum Provenance {
    /// Indexed from scratch (full ingest, MRT, or loaded full segment).
    Full,
    /// Patched over its predecessor from these events.
    Delta(Arc<OutputDelta>),
}

/// Precomputed Fig. 4 output for one vantage.
///
/// Invariant (relied on by the incremental patcher): a prefix is in
/// exactly one of `sa` / `exported` iff it is customer-originated, so
/// `customer_prefixes == sa.len() + exported.len()` always.
#[derive(Debug, Clone, Default)]
pub(crate) struct SaCache {
    /// Prefixes in the table originated inside the vantage's customer cone.
    pub customer_prefixes: usize,
    /// SA prefix → origin.
    pub sa: HashMap<PrefixSym, AsnSym>,
    /// Prefixes that are customer-originated but *not* SA.
    pub exported: HashMap<PrefixSym, AsnSym>,
}

/// One ingested, fully-indexed snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The snapshot's engine-assigned id.
    pub id: SnapshotId,
    /// Caller-supplied label (e.g. `day-07`).
    pub label: String,
    pub(crate) vantages: HashMap<AsnSym, Arc<VantageTable>>,
    /// Oracle relationships: `(a, b) → b is a's …` (both directions kept).
    /// `Arc`-shared across a series while the oracle is unchanged.
    pub(crate) relationships: Arc<HashMap<(AsnSym, AsnSym), Relationship>>,
    /// Per-AS oracle neighbor counts `(providers, customers, peers,
    /// siblings)`, precomputed so summaries stay O(lookup).
    pub(crate) neighbor_counts: Arc<HashMap<AsnSym, (usize, usize, usize, usize)>>,
    pub(crate) sa: HashMap<AsnSym, Arc<SaCache>>,
    /// Import typicality per LG vantage: `(prefixes compared, typical)`.
    pub(crate) typicality: HashMap<AsnSym, (usize, usize)>,
    /// Community-derived relationship per (LG vantage, neighbor).
    pub(crate) community_class: HashMap<AsnSym, Arc<HashMap<AsnSym, Relationship>>>,
    /// Interner sizes `(asns, prefixes, communities)` right after this
    /// snapshot was indexed. The interner is append-only across a
    /// series, so these are exactly the block boundaries of the
    /// archive's symbol segment.
    pub(crate) interned_watermark: (usize, usize, usize),
    /// How the snapshot was built (see [`Provenance`]).
    pub(crate) provenance: Provenance,
}

impl Snapshot {
    /// Builds a snapshot from a simulated output plus a relationship
    /// oracle (typically the Gao-inferred graph, as in the paper).
    pub(crate) fn from_output(
        id: SnapshotId,
        label: &str,
        out: &SimOutput,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
        n_shards: usize,
    ) -> Snapshot {
        let mut snap = Snapshot::empty(id, label);
        snap.index_relationships(oracle, interner);

        // Collector peers: best-path tables, SA analysis only.
        for &peer in &out.collector.peers {
            let table = BestTable::from_collector(&out.collector, peer);
            snap.index_vantage(
                &table,
                VantageKind::CollectorPeer,
                oracle,
                interner,
                n_shards,
            );
        }
        for row in out.collector.all_paths() {
            for &c in &row.communities {
                interner.community(c);
            }
        }

        // Looking-Glass vantages: full tables + the LG-only analyses.
        // An LG AS that also peers with the collector keeps the richer view.
        for (&asn, view) in &out.lgs {
            let table = BestTable::from_lg(view);
            snap.index_vantage(
                &table,
                VantageKind::LookingGlass,
                oracle,
                interner,
                n_shards,
            );
            snap.index_lg_analyses(asn, view, oracle, interner);
        }
        snap
    }

    /// Builds a snapshot as a copy-on-write overlay over its
    /// predecessor. `prev` must be the snapshot built from the older end
    /// of `delta`, and `out` the newer output; `cones` caches customer
    /// cones across a series (the caller clears it when the oracle
    /// changes — this function detects that itself and recomputes every
    /// SA cache in that case, since cone membership may have moved).
    ///
    /// Sharing contract, per vantage of `out`:
    /// * unseen before (or its [`VantageKind`] changed) → indexed from
    ///   scratch;
    /// * untouched by `delta` → table, SA cache and LG analyses are the
    ///   predecessor's `Arc`s, no bytes copied;
    /// * churned → shards are O(1) clones patched along the touched
    ///   prefixes' spines, and the SA cache is re-derived only for those
    ///   prefixes (Fig. 4's per-prefix test is local: origin-in-cone +
    ///   next-hop relationship).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_output_incremental(
        id: SnapshotId,
        label: &str,
        prev: &Snapshot,
        delta: &OutputDelta,
        out: &SimOutput,
        oracle: &AsGraph,
        same_oracle: bool,
        interner: &mut WorldInterner,
        cones: &mut HashMap<Asn, CustomerCone>,
        n_shards: usize,
    ) -> Snapshot {
        let mut snap = Snapshot::empty(id, label);
        let oracle_changed = if same_oracle {
            // The caller vouches the oracle is the very graph the
            // predecessor was indexed under (e.g. one reference held
            // across a whole series): skip the rebuild outright.
            false
        } else {
            snap.index_relationships(oracle, interner);
            *snap.relationships != *prev.relationships
                || *snap.neighbor_counts != *prev.neighbor_counts
        };
        if oracle_changed {
            cones.clear();
        } else {
            // Byte-level sharing: drop any freshly built maps for the
            // predecessor's.
            snap.relationships = Arc::clone(&prev.relationships);
            snap.neighbor_counts = Arc::clone(&prev.neighbor_counts);
        }

        // Keep the interner's community table exactly as a full ingest
        // would: every row a full pass would re-intern either existed in
        // the predecessor (already interned, append-only), arrives as an
        // announced/replaced event here, or belongs to a peer that just
        // appeared (whose rows were never compared against anything and
        // are interned wholesale below).
        for vd in delta.collector.values() {
            for (_, route) in vd.announced.iter().chain(&vd.replaced) {
                for &c in &route.communities {
                    interner.community(c);
                }
            }
        }
        if !delta.peers_added.is_empty() {
            for row in out.collector.all_paths() {
                if delta.peers_added.contains(&row.peer) {
                    for &c in &row.communities {
                        interner.community(c);
                    }
                }
            }
        }

        // Collector peers (LG ASes are indexed from their richer view
        // below, but their collector rows were interned above).
        for &peer in &out.collector.peers {
            if out.lgs.contains_key(&peer) {
                continue;
            }
            let fresh = delta.peers_added.contains(&peer)
                || prev_kind(prev, interner, peer) != Some(VantageKind::CollectorPeer);
            if fresh {
                let table = BestTable::from_collector(&out.collector, peer);
                snap.index_vantage(
                    &table,
                    VantageKind::CollectorPeer,
                    oracle,
                    interner,
                    n_shards,
                );
            } else {
                let vd = delta.collector.get(&peer);
                snap.patch_vantage(prev, peer, vd, oracle, interner, cones, oracle_changed);
            }
        }

        // Looking-Glass vantages.
        for (&asn, view) in &out.lgs {
            let fresh = delta.lgs_added.contains(&asn)
                || prev_kind(prev, interner, asn) != Some(VantageKind::LookingGlass);
            let vd = delta.lgs.get(&asn);
            if fresh {
                let table = BestTable::from_lg(view);
                snap.index_vantage(
                    &table,
                    VantageKind::LookingGlass,
                    oracle,
                    interner,
                    n_shards,
                );
                snap.index_lg_analyses(asn, view, oracle, interner);
            } else {
                snap.patch_vantage(prev, asn, vd, oracle, interner, cones, oracle_changed);
                // Import typicality consults the oracle; community
                // semantics only the view. Both are per-vantage and cheap
                // next to table indexing, so any view change (or oracle
                // change) recomputes them wholesale.
                if oracle_changed || vd.is_some_and(|d| d.analyses_dirty) {
                    snap.index_lg_analyses(asn, view, oracle, interner);
                } else {
                    let owner = interner.asn(asn);
                    if let Some(&t) = prev.typicality.get(&owner) {
                        snap.typicality.insert(owner, t);
                    }
                    if let Some(c) = prev.community_class.get(&owner) {
                        snap.community_class.insert(owner, Arc::clone(c));
                    }
                }
            }
        }
        snap
    }

    /// Carries one surviving vantage over from `prev`, applying `vd`'s
    /// best-route events to the copy-on-write table and re-deriving the
    /// SA cache only for the touched prefixes. Also the archive's delta-
    /// segment replay path (`crate::archive`), which is how "load of a
    /// delta segment ≡ full re-index" inherits the incremental ingest's
    /// differential-testing contract.
    ///
    /// Generic over [`Interning`] because the cold tier replays archived
    /// deltas under a shared engine reference: it patches with a
    /// read-only [`crate::intern::FrozenInterner`], while live ingest
    /// keeps interning on miss.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn patch_vantage<I: Interning>(
        &mut self,
        prev: &Snapshot,
        vantage: Asn,
        vd: Option<&VantageDelta>,
        oracle: &AsGraph,
        interner: &mut I,
        cones: &mut HashMap<Asn, CustomerCone>,
        oracle_changed: bool,
    ) {
        let owner = interner.asn(vantage);
        let prev_table = prev
            .vantages
            .get(&owner)
            .expect("patch_vantage callers verified the vantage survives");
        let no_route_events = vd.is_none_or(|d| d.route_events() == 0);

        // --- the table: Arc-shared, or a patched COW overlay ---
        let table = if no_route_events {
            Arc::clone(prev_table)
        } else {
            let vd = vd.expect("route events imply a delta");
            let mut table = VantageTable {
                kind: prev_table.kind,
                shards: prev_table.shards.clone(),
                route_count: prev_table.route_count,
            };
            let n = table.shards.len();
            for &p in &vd.withdrawn {
                if table.shards[shard_of(p, n)].remove(p).is_some() {
                    table.route_count -= 1;
                }
            }
            for (p, r) in vd.announced.iter().chain(&vd.replaced) {
                interner.prefix(*p);
                let route = CompactRoute {
                    next_hop: interner.asn(r.next_hop),
                    path: r.path.iter().map(|&a| interner.asn(a)).collect(),
                };
                if table.shards[shard_of(*p, n)].insert(*p, route).is_none() {
                    table.route_count += 1;
                }
            }
            Arc::new(table)
        };
        self.vantages.insert(owner, table);

        // --- the SA cache ---
        let prev_sa = prev
            .sa
            .get(&owner)
            .expect("every indexed vantage has an SA cache");
        if oracle_changed {
            // Cone membership may have moved: re-derive from the full
            // table (rare — only when the relationship oracle itself
            // changed mid-series).
            let table = self.vantages[&owner].clone();
            let mut rows: Vec<(Ipv4Prefix, CompactRoute)> = Vec::new();
            for shard in &table.shards {
                rows.extend(shard.iter().map(|(p, r)| (p, r.clone())));
            }
            let cone = cones
                .entry(vantage)
                .or_insert_with(|| CustomerCone::build(oracle, vantage));
            let mut cache = SaCache::default();
            for (p, route) in rows {
                let ps = interner
                    .lookup_prefix(p)
                    .expect("table prefixes are interned");
                classify_sa(
                    &mut cache,
                    ps,
                    vantage,
                    interner.resolve_asn(route.next_hop),
                    interner.resolve_asn(*route.path.last().expect("paths are non-empty")),
                    oracle,
                    cone,
                    interner,
                );
            }
            cache.customer_prefixes = cache.sa.len() + cache.exported.len();
            self.sa.insert(owner, Arc::new(cache));
        } else if no_route_events {
            self.sa.insert(owner, Arc::clone(prev_sa));
        } else {
            let vd = vd.expect("route events imply a delta");
            let cone = cones
                .entry(vantage)
                .or_insert_with(|| CustomerCone::build(oracle, vantage));
            let mut cache = SaCache::clone(prev_sa);
            for &p in &vd.withdrawn {
                let ps = interner.prefix(p);
                cache.sa.remove(&ps);
                cache.exported.remove(&ps);
            }
            for (p, r) in vd.announced.iter().chain(&vd.replaced) {
                let ps = interner.prefix(*p);
                cache.sa.remove(&ps);
                cache.exported.remove(&ps);
                classify_sa(
                    &mut cache,
                    ps,
                    vantage,
                    r.next_hop,
                    *r.path.last().expect("delta paths are non-empty"),
                    oracle,
                    cone,
                    interner,
                );
            }
            cache.customer_prefixes = cache.sa.len() + cache.exported.len();
            self.sa.insert(owner, Arc::new(cache));
        }
    }

    /// Builds a snapshot from a collector view alone (the MRT ingest
    /// path). The caller supplies the oracle — typically Gao-inferred from
    /// the dump's own paths.
    pub(crate) fn from_collector(
        id: SnapshotId,
        label: &str,
        view: &CollectorView,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
        n_shards: usize,
    ) -> Snapshot {
        let mut snap = Snapshot::empty(id, label);
        snap.index_relationships(oracle, interner);
        for &peer in &view.peers {
            let table = BestTable::from_collector(view, peer);
            snap.index_vantage(
                &table,
                VantageKind::CollectorPeer,
                oracle,
                interner,
                n_shards,
            );
        }
        for row in view.all_paths() {
            for &c in &row.communities {
                interner.community(c);
            }
        }
        snap
    }

    pub(crate) fn empty(id: SnapshotId, label: &str) -> Snapshot {
        Snapshot {
            id,
            label: label.to_string(),
            vantages: HashMap::new(),
            relationships: Arc::new(HashMap::new()),
            neighbor_counts: Arc::new(HashMap::new()),
            sa: HashMap::new(),
            typicality: HashMap::new(),
            community_class: HashMap::new(),
            interned_watermark: (0, 0, 0),
            provenance: Provenance::Full,
        }
    }

    fn index_relationships(&mut self, oracle: &AsGraph, interner: &mut WorldInterner) {
        let mut relationships = HashMap::new();
        let mut neighbor_counts: HashMap<AsnSym, (usize, usize, usize, usize)> = HashMap::new();
        for a in oracle.ases() {
            let sa = interner.asn(a);
            let counts = neighbor_counts.entry(sa).or_default();
            for (b, rel) in oracle.neighbors(a) {
                let sb = interner.asn(b);
                relationships.insert((sa, sb), rel);
                match rel {
                    Relationship::Provider => counts.0 += 1,
                    Relationship::Customer => counts.1 += 1,
                    Relationship::Peer => counts.2 += 1,
                    Relationship::Sibling => counts.3 += 1,
                }
            }
        }
        self.relationships = Arc::new(relationships);
        self.neighbor_counts = Arc::new(neighbor_counts);
    }

    fn index_vantage(
        &mut self,
        table: &BestTable,
        kind: VantageKind,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
        n_shards: usize,
    ) {
        let owner = interner.asn(table.asn);
        let mut shards: Vec<CowTrie<CompactRoute>> =
            (0..n_shards).map(|_| CowTrie::new()).collect();
        for (&prefix, row) in &table.rows {
            interner.prefix(prefix);
            let route = CompactRoute {
                next_hop: interner.asn(row.next_hop),
                path: row.path.iter().map(|&a| interner.asn(a)).collect(),
            };
            shards[shard_of(prefix, n_shards)].insert(prefix, route);
        }
        self.vantages.insert(
            owner,
            Arc::new(VantageTable {
                kind,
                shards,
                route_count: table.rows.len(),
            }),
        );

        // Fig. 4 SA analysis, cached per vantage.
        let report = sa_prefixes(table, oracle);
        let mut cache = SaCache {
            customer_prefixes: report.customer_prefixes,
            ..Default::default()
        };
        for (&prefix, &origin) in &report.sa_origin {
            cache
                .sa
                .insert(interner.prefix(prefix), interner.asn(origin));
        }
        for (&prefix, row) in &table.rows {
            let origin = row.origin();
            if report.per_origin.contains_key(&origin) && !report.sa.contains(&prefix) {
                cache
                    .exported
                    .insert(interner.prefix(prefix), interner.asn(origin));
            }
        }
        debug_assert_eq!(
            cache.customer_prefixes,
            cache.sa.len() + cache.exported.len(),
            "SA/exported partition the customer prefixes"
        );
        self.sa.insert(owner, Arc::new(cache));
    }

    fn index_lg_analyses(
        &mut self,
        asn: Asn,
        view: &LgView,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
    ) {
        let owner = interner.asn(asn);
        for routes in view.rows.values() {
            for r in routes {
                for &c in &r.communities {
                    interner.community(c);
                }
            }
        }
        let t = lg_typicality(view, oracle);
        self.typicality
            .insert(owner, (t.prefixes_compared, t.typical));
        let inf = infer_communities(view, &CommunityParams::default());
        let classes: HashMap<AsnSym, Relationship> = inf
            .neighbor_class
            .iter()
            .map(|(&n, &r)| (interner.asn(n), r))
            .collect();
        self.community_class.insert(owner, Arc::new(classes));
    }

    /// The vantages indexed in this snapshot, with their kinds.
    pub(crate) fn vantage_syms(&self) -> impl Iterator<Item = (AsnSym, VantageKind)> + '_ {
        self.vantages.iter().map(|(&s, t)| (s, t.kind))
    }

    /// Every prefix in one vantage's table, across all shards (empty
    /// when the AS is not a vantage here). Feeds the history queries'
    /// per-snapshot presence counts.
    pub(crate) fn table_prefixes(&self, vantage: AsnSym) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.vantages
            .get(&vantage)
            .into_iter()
            .flat_map(|t| t.shards.iter().flat_map(|s| s.iter().map(|(p, _)| p)))
    }

    /// Exact route lookup.
    pub(crate) fn route(&self, vantage: AsnSym, prefix: Ipv4Prefix) -> Option<&CompactRoute> {
        let table = self.vantages.get(&vantage)?;
        table.shards[shard_of(prefix, table.shards.len())].get(prefix)
    }

    /// Longest-prefix-match lookup: consults every shard (covering
    /// prefixes hash to different shards) and keeps the longest hit.
    pub(crate) fn route_lpm(
        &self,
        vantage: AsnSym,
        prefix: Ipv4Prefix,
    ) -> Option<(Ipv4Prefix, &CompactRoute)> {
        let table = self.vantages.get(&vantage)?;
        table
            .shards
            .iter()
            .filter_map(|shard| shard.best_match(prefix))
            .max_by_key(|(p, _)| p.len())
    }

    /// Total trie nodes across all vantage shards (counted as if
    /// unshared).
    pub(crate) fn trie_nodes(&self) -> usize {
        self.vantages
            .values()
            .map(|t| t.shards.iter().map(CowTrie::node_count).sum::<usize>())
            .sum()
    }

    /// Trie nodes physically shared with `prev` (pointer-equal subtries,
    /// summed over vantages present in both snapshots).
    pub(crate) fn trie_nodes_shared_with(&self, prev: &Snapshot) -> usize {
        self.vantages
            .iter()
            .filter_map(|(sym, table)| prev.vantages.get(sym).map(|pt| (table, pt)))
            .map(|(table, pt)| {
                table
                    .shards
                    .iter()
                    .zip(&pt.shards)
                    .map(|(s, p)| s.shared_nodes_with(p))
                    .sum::<usize>()
            })
            .sum()
    }
}

/// The effective kind the predecessor snapshot indexed `vantage` under,
/// if at all. A kind switch (an AS gaining or losing its Looking-Glass
/// view while staying a collector peer) means its stored table has a
/// different shape, so the incremental path re-indexes it from scratch.
fn prev_kind(prev: &Snapshot, interner: &WorldInterner, vantage: Asn) -> Option<VantageKind> {
    let sym = interner.lookup_asn(vantage)?;
    prev.vantages.get(&sym).map(|t| t.kind)
}

/// The Fig. 4 classification of a single route, applied to an SA cache:
/// a customer-originated prefix lands in `sa` (reached via a non-customer
/// next hop) or `exported`; anything else is left out entirely. This is
/// the per-prefix core of [`rpi_core::export_policy::sa_prefixes`],
/// reused by the incremental patcher — the differential fuzz suite holds
/// the two implementations byte-identical.
#[allow(clippy::too_many_arguments)]
fn classify_sa<I: Interning>(
    cache: &mut SaCache,
    prefix: PrefixSym,
    provider: Asn,
    next_hop: Asn,
    origin: Asn,
    oracle: &AsGraph,
    cone: &CustomerCone,
    interner: &mut I,
) {
    if origin == provider || !cone.contains(origin) {
        return;
    }
    let via_customer = matches!(
        oracle.rel(provider, next_hop),
        Some(Relationship::Customer) | Some(Relationship::Sibling)
    );
    let origin_sym = interner.asn(origin);
    if via_customer {
        cache.exported.insert(prefix, origin_sym);
    } else {
        cache.sa.insert(prefix, origin_sym);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let prefixes = ["10.0.0.0/8", "10.0.0.0/16", "192.168.4.0/24", "0.0.0.0/0"];
        for n in [1usize, 2, 7, 64] {
            for p in prefixes {
                let p: Ipv4Prefix = p.parse().unwrap();
                let s = shard_of(p, n);
                assert!(s < n);
                assert_eq!(s, shard_of(p, n), "deterministic");
            }
        }
    }

    #[test]
    fn shards_spread_prefixes() {
        // 256 /24s into 8 shards: no shard should be empty or hog > half.
        let mut counts = [0usize; 8];
        for i in 0..256u32 {
            let p = Ipv4Prefix::canonical(i << 8, 24);
            counts[shard_of(p, 8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all shards used: {counts:?}");
        assert!(
            counts.iter().all(|&c| c < 128),
            "no shard hogs half: {counts:?}"
        );
    }
}
