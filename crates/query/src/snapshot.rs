//! One ingested snapshot: sharded per-vantage route tables plus the
//! precomputed `rpi_core` analyses.
//!
//! A snapshot is built once at ingest time and never mutated; every query
//! against it is a hash/trie lookup. Routes are stored interned
//! ([`crate::WorldInterner`]), so a snapshot of a `Small` world is a few
//! hundred KiB and diffing two snapshots is integer work.

use std::collections::HashMap;

use bgp_sim::{CollectorView, LgView, SimOutput};
use bgp_types::{Asn, Ipv4Prefix, PrefixTrie, Relationship};
use net_topology::AsGraph;
use rpi_core::community::{infer_communities, CommunityParams};
use rpi_core::export_policy::sa_prefixes;
use rpi_core::import_policy::lg_typicality;
use rpi_core::view::BestTable;

use crate::intern::{AsnSym, PrefixSym, WorldInterner};

/// Index of a snapshot inside its engine, in ingestion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapshotId(pub u32);

impl SnapshotId {
    /// The id as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of view a vantage contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VantageKind {
    /// Full Looking-Glass view: LOCAL_PREF and communities visible, so all
    /// the paper's analyses are precomputed for it.
    LookingGlass,
    /// Collector peer: best paths only; SA analysis is available, import
    /// typicality and community semantics are not.
    CollectorPeer,
}

/// A best route in compact interned form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CompactRoute {
    /// Neighbor the route was learned from.
    pub next_hop: AsnSym,
    /// Interned AS path, next-hop first, origin last.
    pub path: Box<[AsnSym]>,
}

/// One vantage's best-route table, sharded by prefix.
#[derive(Debug)]
pub(crate) struct VantageTable {
    pub kind: VantageKind,
    /// `shards[shard_of(prefix, n)]` holds the prefix's route.
    pub shards: Vec<PrefixTrie<CompactRoute>>,
    pub route_count: usize,
}

/// Deterministic shard assignment for a prefix (splitmix-style avalanche
/// over the canonical bits + length, so /8s and /24s spread evenly).
pub(crate) fn shard_of(prefix: Ipv4Prefix, n_shards: usize) -> usize {
    let mut z = ((prefix.bits() as u64) << 8) | prefix.len() as u64;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as usize % n_shards
}

/// Precomputed Fig. 4 output for one vantage.
#[derive(Debug, Default)]
pub(crate) struct SaCache {
    /// Prefixes in the table originated inside the vantage's customer cone.
    pub customer_prefixes: usize,
    /// SA prefix → origin.
    pub sa: HashMap<PrefixSym, AsnSym>,
    /// Prefixes that are customer-originated but *not* SA.
    pub exported: HashMap<PrefixSym, AsnSym>,
}

/// One ingested, fully-indexed snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The snapshot's engine-assigned id.
    pub id: SnapshotId,
    /// Caller-supplied label (e.g. `day-07`).
    pub label: String,
    pub(crate) vantages: HashMap<AsnSym, VantageTable>,
    /// Oracle relationships: `(a, b) → b is a's …` (both directions kept).
    pub(crate) relationships: HashMap<(AsnSym, AsnSym), Relationship>,
    /// Per-AS oracle neighbor counts `(providers, customers, peers,
    /// siblings)`, precomputed so summaries stay O(lookup).
    pub(crate) neighbor_counts: HashMap<AsnSym, (usize, usize, usize, usize)>,
    pub(crate) sa: HashMap<AsnSym, SaCache>,
    /// Import typicality per LG vantage: `(prefixes compared, typical)`.
    pub(crate) typicality: HashMap<AsnSym, (usize, usize)>,
    /// Community-derived relationship per (LG vantage, neighbor).
    pub(crate) community_class: HashMap<AsnSym, HashMap<AsnSym, Relationship>>,
}

impl Snapshot {
    /// Builds a snapshot from a simulated output plus a relationship
    /// oracle (typically the Gao-inferred graph, as in the paper).
    pub(crate) fn from_output(
        id: SnapshotId,
        label: &str,
        out: &SimOutput,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
        n_shards: usize,
    ) -> Snapshot {
        let mut snap = Snapshot::empty(id, label);
        snap.index_relationships(oracle, interner);

        // Collector peers: best-path tables, SA analysis only.
        for &peer in &out.collector.peers {
            let table = BestTable::from_collector(&out.collector, peer);
            snap.index_vantage(
                &table,
                VantageKind::CollectorPeer,
                oracle,
                interner,
                n_shards,
            );
        }
        for row in out.collector.all_paths() {
            for &c in &row.communities {
                interner.community(c);
            }
        }

        // Looking-Glass vantages: full tables + the LG-only analyses.
        // An LG AS that also peers with the collector keeps the richer view.
        for (&asn, view) in &out.lgs {
            let table = BestTable::from_lg(view);
            snap.index_vantage(
                &table,
                VantageKind::LookingGlass,
                oracle,
                interner,
                n_shards,
            );
            snap.index_lg_analyses(asn, view, oracle, interner);
        }
        snap
    }

    /// Builds a snapshot from a collector view alone (the MRT ingest
    /// path). The caller supplies the oracle — typically Gao-inferred from
    /// the dump's own paths.
    pub(crate) fn from_collector(
        id: SnapshotId,
        label: &str,
        view: &CollectorView,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
        n_shards: usize,
    ) -> Snapshot {
        let mut snap = Snapshot::empty(id, label);
        snap.index_relationships(oracle, interner);
        for &peer in &view.peers {
            let table = BestTable::from_collector(view, peer);
            snap.index_vantage(
                &table,
                VantageKind::CollectorPeer,
                oracle,
                interner,
                n_shards,
            );
        }
        for row in view.all_paths() {
            for &c in &row.communities {
                interner.community(c);
            }
        }
        snap
    }

    fn empty(id: SnapshotId, label: &str) -> Snapshot {
        Snapshot {
            id,
            label: label.to_string(),
            vantages: HashMap::new(),
            relationships: HashMap::new(),
            neighbor_counts: HashMap::new(),
            sa: HashMap::new(),
            typicality: HashMap::new(),
            community_class: HashMap::new(),
        }
    }

    fn index_relationships(&mut self, oracle: &AsGraph, interner: &mut WorldInterner) {
        for a in oracle.ases() {
            let sa = interner.asn(a);
            let counts = self.neighbor_counts.entry(sa).or_default();
            for (b, rel) in oracle.neighbors(a) {
                let sb = interner.asn(b);
                self.relationships.insert((sa, sb), rel);
                match rel {
                    Relationship::Provider => counts.0 += 1,
                    Relationship::Customer => counts.1 += 1,
                    Relationship::Peer => counts.2 += 1,
                    Relationship::Sibling => counts.3 += 1,
                }
            }
        }
    }

    fn index_vantage(
        &mut self,
        table: &BestTable,
        kind: VantageKind,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
        n_shards: usize,
    ) {
        let owner = interner.asn(table.asn);
        let mut shards: Vec<PrefixTrie<CompactRoute>> =
            (0..n_shards).map(|_| PrefixTrie::new()).collect();
        for (&prefix, row) in &table.rows {
            interner.prefix(prefix);
            let route = CompactRoute {
                next_hop: interner.asn(row.next_hop),
                path: row.path.iter().map(|&a| interner.asn(a)).collect(),
            };
            shards[shard_of(prefix, n_shards)].insert(prefix, route);
        }
        self.vantages.insert(
            owner,
            VantageTable {
                kind,
                shards,
                route_count: table.rows.len(),
            },
        );

        // Fig. 4 SA analysis, cached per vantage.
        let report = sa_prefixes(table, oracle);
        let mut cache = SaCache {
            customer_prefixes: report.customer_prefixes,
            ..Default::default()
        };
        for (&prefix, &origin) in &report.sa_origin {
            cache
                .sa
                .insert(interner.prefix(prefix), interner.asn(origin));
        }
        for (&prefix, row) in &table.rows {
            let origin = row.origin();
            if report.per_origin.contains_key(&origin) && !report.sa.contains(&prefix) {
                cache
                    .exported
                    .insert(interner.prefix(prefix), interner.asn(origin));
            }
        }
        self.sa.insert(owner, cache);
    }

    fn index_lg_analyses(
        &mut self,
        asn: Asn,
        view: &LgView,
        oracle: &AsGraph,
        interner: &mut WorldInterner,
    ) {
        let owner = interner.asn(asn);
        for routes in view.rows.values() {
            for r in routes {
                for &c in &r.communities {
                    interner.community(c);
                }
            }
        }
        let t = lg_typicality(view, oracle);
        self.typicality
            .insert(owner, (t.prefixes_compared, t.typical));
        let inf = infer_communities(view, &CommunityParams::default());
        let classes: HashMap<AsnSym, Relationship> = inf
            .neighbor_class
            .iter()
            .map(|(&n, &r)| (interner.asn(n), r))
            .collect();
        self.community_class.insert(owner, classes);
    }

    /// The vantages indexed in this snapshot, with their kinds.
    pub(crate) fn vantage_syms(&self) -> impl Iterator<Item = (AsnSym, VantageKind)> + '_ {
        self.vantages.iter().map(|(&s, t)| (s, t.kind))
    }

    /// Every prefix in one vantage's table, across all shards (empty
    /// when the AS is not a vantage here). Feeds the history queries'
    /// per-snapshot presence counts.
    pub(crate) fn table_prefixes(&self, vantage: AsnSym) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.vantages
            .get(&vantage)
            .into_iter()
            .flat_map(|t| t.shards.iter().flat_map(|s| s.iter().map(|(p, _)| p)))
    }

    /// Exact route lookup.
    pub(crate) fn route(&self, vantage: AsnSym, prefix: Ipv4Prefix) -> Option<&CompactRoute> {
        let table = self.vantages.get(&vantage)?;
        table.shards[shard_of(prefix, table.shards.len())].get(prefix)
    }

    /// Longest-prefix-match lookup: consults every shard (covering
    /// prefixes hash to different shards) and keeps the longest hit.
    pub(crate) fn route_lpm(
        &self,
        vantage: AsnSym,
        prefix: Ipv4Prefix,
    ) -> Option<(Ipv4Prefix, &CompactRoute)> {
        let table = self.vantages.get(&vantage)?;
        table
            .shards
            .iter()
            .filter_map(|shard| shard.best_match(prefix))
            .max_by_key(|(p, _)| p.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let prefixes = ["10.0.0.0/8", "10.0.0.0/16", "192.168.4.0/24", "0.0.0.0/0"];
        for n in [1usize, 2, 7, 64] {
            for p in prefixes {
                let p: Ipv4Prefix = p.parse().unwrap();
                let s = shard_of(p, n);
                assert!(s < n);
                assert_eq!(s, shard_of(p, n), "deterministic");
            }
        }
    }

    #[test]
    fn shards_spread_prefixes() {
        // 256 /24s into 8 shards: no shard should be empty or hog > half.
        let mut counts = [0usize; 8];
        for i in 0..256u32 {
            let p = Ipv4Prefix::canonical(i << 8, 24);
            counts[shard_of(p, 8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "all shards used: {counts:?}");
        assert!(
            counts.iter().all(|&c| c < 128),
            "no shard hogs half: {counts:?}"
        );
    }
}
