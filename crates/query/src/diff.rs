//! Snapshot-to-snapshot deltas: the observatory's answer to "what changed
//! between *t* and *t+1*?" — new and vanished SA prefixes, flipped
//! relationships, and best-route churn per vantage (the signals behind
//! the paper's Figs. 6–7 persistence study, served as a query).

use bgp_types::{Asn, Ipv4Prefix, Relationship};

use crate::intern::WorldInterner;
use crate::snapshot::Snapshot;

/// Best-route churn at one vantage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VantageChurn {
    /// The vantage.
    pub vantage: Asn,
    /// Prefixes present in `to` but not `from`.
    pub added: usize,
    /// Prefixes present in `from` but not `to`.
    pub removed: usize,
    /// Prefixes present in both whose best route (next hop or path)
    /// changed.
    pub changed: usize,
}

/// One relationship edge that differs between the snapshots' oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationshipFlip {
    /// First endpoint (the perspective AS).
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// `b is a's …` in the `from` snapshot (`None` = edge absent).
    pub before: Option<Relationship>,
    /// `b is a's …` in the `to` snapshot.
    pub after: Option<Relationship>,
}

/// Everything that changed between two snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Label of the `from` snapshot.
    pub from_label: String,
    /// Label of the `to` snapshot.
    pub to_label: String,
    /// `(vantage, prefix)` pairs that became selectively announced.
    pub new_sa: Vec<(Asn, Ipv4Prefix)>,
    /// `(vantage, prefix)` pairs that stopped being selectively announced.
    pub gone_sa: Vec<(Asn, Ipv4Prefix)>,
    /// Oracle relationship changes (each unordered pair reported once).
    pub flips: Vec<RelationshipFlip>,
    /// Per-vantage best-route churn, for vantages present in either
    /// snapshot (a vantage missing from one side counts all its routes as
    /// added/removed).
    pub churn: Vec<VantageChurn>,
}

impl SnapshotDiff {
    /// `true` when the snapshots are observationally identical.
    pub fn is_empty(&self) -> bool {
        self.new_sa.is_empty()
            && self.gone_sa.is_empty()
            && self.flips.is_empty()
            && self
                .churn
                .iter()
                .all(|c| c.added == 0 && c.removed == 0 && c.changed == 0)
    }

    /// Total churned routes across vantages.
    pub fn churned_routes(&self) -> usize {
        self.churn
            .iter()
            .map(|c| c.added + c.removed + c.changed)
            .sum()
    }

    /// Computes the delta. Symbols are shared across the engine's
    /// snapshots, so all comparisons here are integer comparisons.
    pub(crate) fn between(interner: &WorldInterner, a: &Snapshot, b: &Snapshot) -> SnapshotDiff {
        let mut diff = SnapshotDiff {
            from_label: a.label.clone(),
            to_label: b.label.clone(),
            ..Default::default()
        };

        // --- SA deltas, per vantage present in either snapshot ---
        let mut sa_vantages: Vec<_> = a.sa.keys().chain(b.sa.keys()).copied().collect();
        sa_vantages.sort_unstable();
        sa_vantages.dedup();
        for v in sa_vantages {
            let vantage = interner.resolve_asn(v);
            let empty = Default::default();
            let sa_a = a.sa.get(&v).map_or(&empty, |c| &c.sa);
            let sa_b = b.sa.get(&v).map_or(&empty, |c| &c.sa);
            for &p in sa_b.keys() {
                if !sa_a.contains_key(&p) {
                    diff.new_sa.push((vantage, interner.resolve_prefix(p)));
                }
            }
            for &p in sa_a.keys() {
                if !sa_b.contains_key(&p) {
                    diff.gone_sa.push((vantage, interner.resolve_prefix(p)));
                }
            }
        }
        diff.new_sa.sort_unstable();
        diff.gone_sa.sort_unstable();

        // --- relationship flips (each unordered pair once) ---
        let mut edges: Vec<_> = a
            .relationships
            .keys()
            .chain(b.relationships.keys())
            .filter(|(x, y)| x <= y)
            .copied()
            .collect();
        edges.sort_unstable();
        edges.dedup();
        for (x, y) in edges {
            let before = a.relationships.get(&(x, y)).copied();
            let after = b.relationships.get(&(x, y)).copied();
            if before != after {
                diff.flips.push(RelationshipFlip {
                    a: interner.resolve_asn(x),
                    b: interner.resolve_asn(y),
                    before,
                    after,
                });
            }
        }

        // --- best-route churn per vantage, shards compared in parallel ---
        let mut vantages: Vec<_> = a
            .vantages
            .keys()
            .chain(b.vantages.keys())
            .copied()
            .collect();
        vantages.sort_unstable();
        vantages.dedup();
        for v in vantages {
            let (mut added, mut removed, mut changed) = (0, 0, 0);
            match (a.vantages.get(&v), b.vantages.get(&v)) {
                (Some(ta), Some(tb)) => {
                    debug_assert_eq!(ta.shards.len(), tb.shards.len());
                    let n = ta.shards.len().min(tb.shards.len());
                    let mut per_shard = vec![(0usize, 0usize, 0usize); n];
                    std::thread::scope(|scope| {
                        for (i, slot) in per_shard.iter_mut().enumerate() {
                            let (sa, sb) = (&ta.shards[i], &tb.shards[i]);
                            scope.spawn(move || {
                                let rows_a: std::collections::HashMap<_, _> = sa.iter().collect();
                                let mut seen = 0usize;
                                for (p, rb) in sb.iter() {
                                    match rows_a.get(&p) {
                                        Some(ra) => {
                                            seen += 1;
                                            if *ra != rb {
                                                slot.2 += 1;
                                            }
                                        }
                                        None => slot.0 += 1,
                                    }
                                }
                                slot.1 = rows_a.len() - seen;
                            });
                        }
                    });
                    for (ad, rm, ch) in per_shard {
                        added += ad;
                        removed += rm;
                        changed += ch;
                    }
                }
                (Some(ta), None) => removed = ta.route_count,
                (None, Some(tb)) => added = tb.route_count,
                (None, None) => {}
            }
            diff.churn.push(VantageChurn {
                vantage: interner.resolve_asn(v),
                added,
                removed,
                changed,
            });
        }
        diff
    }
}
