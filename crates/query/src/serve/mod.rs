//! # `rpi_query::serve` — the non-blocking TCP front end
//!
//! Turns a shared [`QueryEngine`](crate::QueryEngine) into a network
//! service speaking the same newline-delimited [`proto`](crate::proto)
//! grammar as the stdin REPL — byte-identically, which the CI network
//! smoke enforces by diffing TCP-served output for the committed smoke
//! script against the stdin golden.
//!
//! The design is a readiness event loop over nonblocking std sockets
//! (no tokio, no mio — the build is registry-free). Readiness comes
//! from a pluggable [`PollBackend`]: the portable `sweep` fallback
//! attempts every syscall and treats `WouldBlock` as "not ready", while
//! the Linux `epoll` backend (a thin audited `extern "C"` shim in
//! `rpi-epoll`) gets real kernel notification so idle connections cost
//! nothing. `serve_threads = N` shards connections across N copies of
//! the same loop behind a dedicated acceptor; query parallelism
//! additionally lives where it always did, in the engine's
//! shard-bucketed [`execute_batch`](crate::QueryEngine::execute_batch):
//!
//! * **Framing** ([`LineFramer`](crate::proto::LineFramer)): requests
//!   are lines; a query byte-split across TCP segments reassembles, and
//!   a line over the cap becomes one in-band `error line N: …` response
//!   instead of unbounded buffering — the connection survives.
//! * **Pipelining**: every parseable query in one read is executed as a
//!   single engine batch, so a client that writes N lines per segment
//!   gets shard-parallel execution without any protocol change.
//! * **Backpressure**: each connection's rendered-but-unsent output is
//!   bounded by [`ServeConfig::write_buf_cap`]; past it the server stops
//!   *reading* that connection until the buffer drains, so a slow
//!   consumer throttles itself instead of growing the heap.
//! * **Shedding**: connections idle (or permanently backpressured)
//!   longer than [`ServeConfig::idle_timeout`] are dropped and counted.
//! * **Shutdown without signals**: the `shutdown` control verb (or
//!   [`ServerHandle::shutdown`]) stops the loop, flushes every
//!   connection, and [`Server::run`] returns the final [`ServeStats`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use rpi_query::serve::{ServeConfig, Server};
//! use rpi_query::QueryEngine;
//!
//! let engine = Arc::new(QueryEngine::new(8));
//! let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default())?;
//! println!("listening on {}", server.local_addr()?);
//! let stats = server.run()?; // until a `shutdown` line arrives
//! println!("{}", stats.render());
//! # std::io::Result::Ok(())
//! ```

mod conn;
mod event_loop;
pub(crate) mod poll;
pub mod session;

use std::time::Duration;

pub use event_loop::{EngineSource, Server, ServerHandle};
pub use poll::PollBackend;

/// Tunables of the serve loop. `Default` matches the daemon's CLI
/// defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connections served concurrently; everything past this is answered
    /// with an in-band `error: server full (…)` notice and closed.
    pub max_conns: usize,
    /// Per-connection cap on rendered-but-unsent response bytes. A
    /// connection over the cap stops being read (backpressure) until it
    /// drains. One processing round may overshoot by its own rendered
    /// output; the cap bounds *growth*, which [`ServeStats::max_write_buf`]
    /// makes observable.
    pub write_buf_cap: usize,
    /// Connections with no byte movement in either direction for this
    /// long are shed (counted in [`ServeStats::shed_idle`]).
    pub idle_timeout: Duration,
    /// Longest accepted request line; longer lines get an in-band error
    /// and are discarded to their terminator.
    pub max_line_len: usize,
    /// Sleep between sweeps when no socket made progress.
    pub poll_interval: Duration,
    /// Readiness backend. `Default` honors the `RPI_SERVE_BACKEND`
    /// environment override (`sweep`/`epoll`/`auto`) so a CI matrix can
    /// drive every test through both implementations, falling back to
    /// [`PollBackend::auto`] (epoll where supported).
    pub backend: PollBackend,
    /// Event-loop shard threads. `1` (default) keeps the listener
    /// inline in a single loop — the original topology; `N > 1` runs a
    /// dedicated acceptor distributing connections round-robin across N
    /// shard loops.
    pub serve_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_conns: 64,
            write_buf_cap: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            max_line_len: 16 * 1024,
            poll_interval: Duration::from_micros(200),
            backend: PollBackend::from_env(),
            serve_threads: 1,
        }
    }
}

/// A snapshot of the server's counters — live via
/// [`ServerHandle::stats`], final from [`Server::run`] (what the daemon
/// prints on shutdown).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections turned away (over capacity or setup failure).
    pub rejected: u64,
    /// Connections open at snapshot time.
    pub active: u64,
    /// Grammar queries executed.
    pub queries: u64,
    /// In-band error responses (garbage/oversized lines, execution
    /// errors).
    pub errors: u64,
    /// Request bytes consumed.
    pub bytes_in: u64,
    /// Response bytes written.
    pub bytes_out: u64,
    /// Connections shed by the idle timeout.
    pub shed_idle: u64,
    /// High-water mark of any connection's pending write buffer.
    pub max_write_buf: u64,
    /// `rov` queries the shared engine executed (engine lifetime — a
    /// REPL session on the same engine counts too, like the cache
    /// stats below).
    pub rov_queries: u64,
    /// `hijacks` queries the shared engine executed.
    pub hijack_queries: u64,
    /// `leaks` queries the shared engine executed.
    pub leak_queries: u64,
    /// ROV validation cache hits on the shared engine.
    pub rov_cache_hits: u64,
    /// ROV validation cache misses on the shared engine.
    pub rov_cache_misses: u64,
    /// The cold tier's residency counters when the shared engine is
    /// tier-attached (`--archive … --hot-cap N`); `None` on fully
    /// hydrated engines.
    pub tier: Option<crate::tier::TierStats>,
    /// Time since the server bound its listener.
    pub elapsed: Duration,
}

impl ServeStats {
    /// Queries per second averaged over the server's **lifetime** —
    /// which understates bursty load (a 10 s burst at 500k q/s inside a
    /// 100 s run averages to 50k q/s). The interval emitter
    /// (`--metrics-interval`) feeds per-interval rates into
    /// [`crate::metrics::QueryMetrics::note_interval_qps`], whose peak
    /// the daemon reports next to this lifetime figure on exit.
    pub fn queries_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.queries as f64 / s
        } else {
            0.0
        }
    }

    /// The one-line summary the daemon prints on shutdown. Tier-attached
    /// engines append their residency counters; hydrated engines render
    /// exactly as before.
    pub fn render(&self) -> String {
        let tier = match &self.tier {
            Some(t) => format!(
                ", tier {}/{} hot (cap {}) {} hydrations / {} evictions / {} cold hits",
                t.hot, t.snapshots, t.hot_cap, t.hydrations, t.evictions, t.cold_hits,
            ),
            None => String::new(),
        };
        format!(
            "served {} queries over {} connections in {:.2?} ({:.0} queries/s lifetime): \
             {} B in / {} B out, {} errors, {} rejected, {} shed idle, write-buf peak {} B, \
             sec rov {} / hijacks {} / leaks {} (rov cache {} hits / {} misses){tier}",
            self.queries,
            self.accepted,
            self.elapsed,
            self.queries_per_sec(),
            self.bytes_in,
            self.bytes_out,
            self.errors,
            self.rejected,
            self.shed_idle,
            self.max_write_buf,
            self.rov_queries,
            self.hijack_queries,
            self.leak_queries,
            self.rov_cache_hits,
            self.rov_cache_misses,
        )
    }
}
