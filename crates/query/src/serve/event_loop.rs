//! The readiness event loop: every socket nonblocking, each iteration
//! services whatever the readiness backend reports — accepts, reads,
//! batch execution, writes — and backs off only when nothing moves.
//!
//! std-only by design (the build has no registry access, so no mio or
//! tokio). Readiness comes from a [`poll`] backend: the portable
//! `sweep` backend reports every socket ready and lets `WouldBlock`
//! sort it out (the original design — O(conns) per sweep), while the
//! Linux `epoll` backend gets real kernel notification, so 10k idle
//! connections cost nothing per wait.
//!
//! Scaling out: `serve_threads = N` runs N copies of the same shard
//! loop, each owning a disjoint set of connections, fed round-robin by
//! a dedicated acceptor thread over an mpsc handoff. Every shard runs
//! the identical conn/session/backpressure state machine against the
//! shared [`EngineSource`]; counters are the engine's registry atomics
//! (shared by construction), capacity is enforced through two process-
//! wide atomic counters, and the loop gauges carry per-shard labeled
//! instances next to the aggregate. `serve_threads = 1` (the default)
//! keeps the listener inline in the single loop — no acceptor thread,
//! no handoff — preserving the original topology exactly.

use std::io::{self};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::engine::QueryEngine;
use crate::metrics::QueryMetrics;
use crate::serve::conn::Conn;
use crate::serve::poll::{self, Interest, PollBackend, Poller, LISTENER_TOKEN};
use crate::serve::{ServeConfig, ServeStats};

/// The serve loop's window onto the engine's metrics registry. The
/// counters themselves live in [`crate::metrics::QueryMetrics`] (so the
/// `metrics` exposition, the interval emitter, and [`ServeStats`] all
/// read the same atomics); this wrapper pins the `Arc` identity once —
/// in live mode every published epoch shares the base engine's registry,
/// so the handle stays valid across epoch swaps.
#[derive(Debug)]
pub(crate) struct StatsInner {
    metrics: Arc<crate::metrics::QueryMetrics>,
}

impl StatsInner {
    /// [`ServeStats`] is a *view*: every field reads registry atomics
    /// (or live engine state), so a snapshot taken mid-load and the
    /// `metrics` exposition can never disagree.
    fn snapshot(&self, started: Instant, engine: &QueryEngine) -> ServeStats {
        let (rov_queries, hijack_queries, leak_queries) = engine.sec_query_counts();
        let cache = engine.rov_cache_stats();
        let m = &self.metrics;
        ServeStats {
            accepted: m.serve_accepted_total.get(),
            rejected: m.serve_rejected_total.get(),
            active: m.serve_active_connections.get() as u64,
            queries: m.total_queries(),
            errors: m.serve_errors_total.get(),
            bytes_in: m.serve_bytes_in_total.get(),
            bytes_out: m.serve_bytes_out_total.get(),
            shed_idle: m.serve_shed_idle_total.get(),
            max_write_buf: m.serve_write_buf_peak_bytes.get() as u64,
            rov_queries,
            hijack_queries,
            leak_queries,
            rov_cache_hits: cache.hits,
            rov_cache_misses: cache.misses,
            tier: engine.tier_stats(),
            elapsed: started.elapsed(),
        }
    }
}

/// Where the serve loop gets its world: one frozen engine for the
/// server's lifetime, or a live publication handle whose **current
/// epoch** is loaded once per processing round — so every batch (and
/// every listing) runs against one consistent world even while the
/// writer publishes the next snapshot.
#[derive(Debug, Clone)]
pub enum EngineSource {
    /// One immutable engine (the pre-live behavior, byte-identical).
    Frozen(Arc<QueryEngine>),
    /// Epoch-published engines from a live ingest writer.
    Live(Arc<crate::live::LiveHandle>),
}

impl EngineSource {
    /// The engine to run the next batch against.
    pub fn current(&self) -> Arc<QueryEngine> {
        match self {
            EngineSource::Frozen(e) => Arc::clone(e),
            EngineSource::Live(h) => h.current(),
        }
    }
}

/// A remote control for a running [`Server`]: request shutdown and read
/// live stats from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    engine: EngineSource,
}

impl ServerHandle {
    /// Asks the serve loop to stop (every shard notices within one poll
    /// tick, flushes its connections, and [`Server::run`] returns the
    /// final stats).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// A live snapshot of the server's counters, read against one
    /// consistent epoch.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot(self.started, &self.engine.current())
    }
}

/// Process-wide connection accounting shared by the acceptor and every
/// shard. Capacity decisions are made against these (the shards no
/// longer own a single connection vector to count), reserved with
/// fetch-then-undo so concurrent admissions stay exact.
#[derive(Debug)]
struct SharedCounters {
    /// Live (non-closing) sessions — the `max_conns` capacity measure.
    live: AtomicUsize,
    /// Every open connection in a shard slab (live + draining) — the
    /// hard fd-cap measure.
    open: AtomicUsize,
    /// Accepted sockets handed to a shard but not yet admitted (counted
    /// so a flood cannot hide unbounded fds inside the mpsc channels).
    in_flight: AtomicUsize,
    /// Per-shard pending-write totals, summed into the aggregate
    /// `rpi_serve_write_buf_bytes` gauge by whichever shard updates
    /// last.
    wbuf: Vec<AtomicU64>,
}

impl SharedCounters {
    fn new(shards: usize) -> SharedCounters {
        SharedCounters {
            live: AtomicUsize::new(0),
            open: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            wbuf: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The TCP front end: a bound listener plus the shared engine, run by
/// [`Server::run`] until a `shutdown` control line or
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: EngineSource,
    cfg: ServeConfig,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
}

impl Server {
    /// Binds the listener and prepares the loop. The engine is shared by
    /// `Arc`: the caller keeps its clone for direct queries (tests
    /// compare served responses against `engine.execute`).
    pub fn bind(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Server::with_listener(engine, TcpListener::bind(addr)?, cfg)
    }

    /// Wraps an already-bound listener (lets a caller validate the
    /// address *before* building an engine, as `rpi-queryd --listen`
    /// does). The listener is switched to nonblocking mode here.
    pub fn with_listener(
        engine: Arc<QueryEngine>,
        listener: TcpListener,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Server::with_listener_source(EngineSource::Frozen(engine), listener, cfg)
    }

    /// [`Server::bind`] over any [`EngineSource`] — what a live daemon
    /// uses to serve epoch-published engines while the writer ingests.
    pub fn bind_source(
        source: EngineSource,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Server::with_listener_source(source, TcpListener::bind(addr)?, cfg)
    }

    /// [`Server::with_listener`] over any [`EngineSource`].
    pub fn with_listener_source(
        engine: EngineSource,
        listener: TcpListener,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        listener.set_nonblocking(true)?;
        let stats = Arc::new(StatsInner {
            metrics: engine.current().metrics_arc(),
        });
        Ok(Server {
            listener,
            engine,
            cfg,
            stats,
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
        })
    }

    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutdown and live stats, usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stats: Arc::clone(&self.stats),
            shutdown: Arc::clone(&self.shutdown),
            started: self.started,
            engine: self.engine.clone(),
        }
    }

    /// Runs the event loop(s) until shutdown, returning the final stats
    /// snapshot. With one serve thread the listener lives inside the
    /// single shard loop; with N > 1 this thread becomes the acceptor,
    /// distributing sockets round-robin to N shard threads running the
    /// identical state machine.
    pub fn run(self) -> io::Result<ServeStats> {
        let m = Arc::clone(&self.stats.metrics);
        let threads = self.cfg.serve_threads.max(1);
        let backend = self.cfg.backend.effective();
        // Hard bound on open sockets: served sessions plus a bounded tail
        // of closing/rejected ones still draining their final bytes. Past
        // it, over-capacity accepts are dropped outright (no notice, no
        // linger) — under a connection flood, shedding beats running out
        // of file descriptors.
        let hard_cap = self.cfg.max_conns + self.cfg.max_conns.clamp(16, 256);
        let shared = SharedCounters::new(threads);

        let run_result: io::Result<()> = if threads == 1 {
            Shard::new(
                0,
                backend,
                &self.cfg,
                self.engine.clone(),
                Arc::clone(&m),
                &self.shutdown,
                &shared,
                hard_cap,
                Some(&self.listener),
                None,
                None,
            )?
            .run()
        } else {
            std::thread::scope(|scope| {
                let mut txs = Vec::with_capacity(threads);
                let mut shards = Vec::with_capacity(threads);
                for id in 0..threads {
                    let (tx, rx) = mpsc::channel::<TcpStream>();
                    txs.push(tx);
                    shards.push(Shard::new(
                        id,
                        backend,
                        &self.cfg,
                        self.engine.clone(),
                        Arc::clone(&m),
                        &self.shutdown,
                        &shared,
                        hard_cap,
                        None,
                        Some(rx),
                        Some(m.shard_gauges(id)),
                    )?);
                }
                let joins: Vec<_> = shards
                    .into_iter()
                    .map(|shard| scope.spawn(move || shard.run()))
                    .collect();
                accept_and_route(
                    &self.listener,
                    txs,
                    &self.shutdown,
                    &shared,
                    &m,
                    &self.cfg,
                    hard_cap,
                );
                let mut result = Ok(());
                for join in joins {
                    match join.join() {
                        Ok(r) => {
                            if result.is_ok() && r.is_err() {
                                result = r;
                            }
                        }
                        Err(_) => {
                            if result.is_ok() {
                                result = Err(io::Error::other("serve shard panicked"))
                            }
                        }
                    }
                }
                result
            })
        };
        m.serve_active_connections.set_u64(0);
        m.serve_write_buf_bytes.set_u64(0);
        run_result?;
        Ok(self.stats.snapshot(self.started, &self.engine.current()))
    }
}

/// The dedicated acceptor (multi-shard mode): accepts everything
/// pending, drops hard-over-cap floods at the door, and hands sockets
/// round-robin to the shard channels. Runs on the [`Server::run`]
/// caller's thread.
fn accept_and_route(
    listener: &TcpListener,
    txs: Vec<mpsc::Sender<TcpStream>>,
    shutdown: &AtomicBool,
    shared: &SharedCounters,
    m: &QueryMetrics,
    cfg: &ServeConfig,
    hard_cap: usize,
) {
    let mut next = 0usize;
    let mut idle_streak: u32 = 0;
    while !shutdown.load(Ordering::Relaxed) {
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progressed = true;
                    let held = shared.open.load(Ordering::Relaxed)
                        + shared.in_flight.load(Ordering::Relaxed);
                    if held >= hard_cap {
                        m.serve_rejected_total.inc();
                        drop(stream);
                        continue;
                    }
                    shared.in_flight.fetch_add(1, Ordering::Relaxed);
                    if txs[next % txs.len()].send(stream).is_err() {
                        // A shard died; its error surfaces from run().
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                    next = next.wrapping_add(1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (peer reset mid-handshake)
                // must not kill the server.
                Err(_) => break,
            }
        }
        if progressed {
            idle_streak = 0;
        } else {
            idle_streak = idle_streak.saturating_add(1);
            std::thread::sleep(cfg.poll_interval * (1u32 << backoff_decay(idle_streak)));
        }
    }
}

/// Idle backoff with a grace window: the first few quiet iterations
/// keep the 200 µs tick (a pipelining client's inter-window gap must
/// not cost latency), then the wait decays exponentially to ~64× the
/// tick (≈13 ms default) — which also bounds how stale a shard's view
/// of the shutdown flag and the handoff channel can get.
fn backoff_decay(idle_streak: u32) -> u32 {
    idle_streak.saturating_sub(8).min(6)
}

/// One event-loop shard: a readiness backend instance plus the slab of
/// connections it owns. `serve_threads = 1` runs exactly one, listener
/// inline; otherwise each lives on its own thread behind the acceptor.
struct Shard<'a> {
    id: usize,
    cfg: &'a ServeConfig,
    engine: EngineSource,
    m: Arc<QueryMetrics>,
    shutdown: &'a AtomicBool,
    shared: &'a SharedCounters,
    hard_cap: usize,
    listener: Option<&'a TcpListener>,
    incoming: Option<mpsc::Receiver<TcpStream>>,
    /// `shard="N"`-labeled (active, write-buf) gauge instances; `None`
    /// on a single-shard server, whose exposition stays byte-compatible
    /// with the original single-loop design.
    gauges: Option<(Arc<rpi_obs::Gauge>, Arc<rpi_obs::Gauge>)>,
    poller: Box<dyn Poller>,
    /// Token-indexed connection slab; freed slots are reused so tokens
    /// stay dense and far below [`LISTENER_TOKEN`].
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Last interest submitted per token (avoids redundant reregisters).
    interests: Vec<Interest>,
    local_live: usize,
    rbuf: Vec<u8>,
}

impl<'a> Shard<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: usize,
        backend: PollBackend,
        cfg: &'a ServeConfig,
        engine: EngineSource,
        m: Arc<QueryMetrics>,
        shutdown: &'a AtomicBool,
        shared: &'a SharedCounters,
        hard_cap: usize,
        listener: Option<&'a TcpListener>,
        incoming: Option<mpsc::Receiver<TcpStream>>,
        gauges: Option<(Arc<rpi_obs::Gauge>, Arc<rpi_obs::Gauge>)>,
    ) -> io::Result<Shard<'a>> {
        Ok(Shard {
            id,
            cfg,
            engine,
            m,
            shutdown,
            shared,
            hard_cap,
            listener,
            incoming,
            gauges,
            poller: poll::make_poller(backend)?,
            slab: Vec::new(),
            free: Vec::new(),
            interests: Vec::new(),
            local_live: 0,
            rbuf: vec![0u8; 64 * 1024],
        })
    }

    fn run(mut self) -> io::Result<()> {
        if let Some(listener) = self.listener {
            self.poller.register(
                poll::fd_of(listener),
                LISTENER_TOKEN,
                Interest {
                    read: true,
                    write: false,
                },
            )?;
        }
        let mut ready: Vec<usize> = Vec::new();
        let mut fresh: Vec<usize> = Vec::new();
        let mut idle_streak: u32 = 0;
        // Idle shedding and gauge refresh run as a periodic maintenance
        // pass: under epoll a quiet connection raises no events, so
        // per-event bookkeeping alone would never time it out.
        let maint_interval =
            (self.cfg.idle_timeout / 4).clamp(self.cfg.poll_interval, Duration::from_secs(1));
        let mut last_maint = Instant::now();
        while !self.shutdown.load(Ordering::Relaxed) {
            // Sockets handed over by the acceptor enter the slab before
            // the wait, so a fresh connection is serviced this round.
            fresh.clear();
            if self.incoming.is_some() {
                loop {
                    let stream = match self.incoming.as_ref().unwrap().try_recv() {
                        Ok(s) => s,
                        Err(_) => break,
                    };
                    self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    if let Some(token) = self.admit(stream) {
                        fresh.push(token);
                    }
                }
            }
            let timeout = if idle_streak == 0 || !fresh.is_empty() {
                Duration::ZERO
            } else {
                self.cfg.poll_interval * (1u32 << backoff_decay(idle_streak))
            };
            self.poller.wait(timeout, &mut ready)?;

            let sweep_start = Instant::now();
            let mut progressed = !fresh.is_empty();
            // The epoch is loaded once per round: every batch processed
            // this round — queries and listings alike — sees one
            // consistent world, and a live writer publishing mid-round
            // is observed only from the next one.
            let epoch = self.engine.current();
            for &token in &ready {
                if token == LISTENER_TOKEN {
                    progressed |= self.accept_sweep(&mut fresh);
                } else {
                    progressed |= self.service(token, &epoch);
                }
            }
            for &token in &fresh {
                progressed |= self.service(token, &epoch);
            }

            let now = Instant::now();
            if now.duration_since(last_maint) >= maint_interval {
                last_maint = now;
                self.maintain(now);
            }
            if progressed {
                idle_streak = 0;
                // Only rounds that moved bytes are worth timing: an idle
                // tick measures the backoff wait, not the loop.
                self.m.serve_sweep_seconds.record(sweep_start.elapsed());
            } else {
                idle_streak = idle_streak.saturating_add(1);
            }
        }
        self.drain();
        Ok(())
    }

    /// Accepts everything pending on the inline listener (single-shard
    /// mode), admitting each socket into the slab.
    fn accept_sweep(&mut self, fresh: &mut Vec<usize>) -> bool {
        let Some(listener) = self.listener else {
            return false;
        };
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progressed = true;
                    if let Some(token) = self.admit(stream) {
                        fresh.push(token);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (peer reset mid-handshake)
                // must not kill the server.
                Err(_) => break,
            }
        }
        progressed
    }

    /// Takes ownership of an accepted socket: capacity check (live
    /// sessions are *reserved* on the shared counter, so concurrent
    /// shards stay exact), over-capacity in-band notice, slab insert,
    /// poller registration.
    fn admit(&mut self, stream: TcpStream) -> Option<usize> {
        let m = Arc::clone(&self.m);
        if self.shared.open.load(Ordering::Relaxed) >= self.hard_cap {
            m.serve_rejected_total.inc();
            return None;
        }
        let mut c = match Conn::new(stream, self.cfg.max_line_len) {
            Ok(c) => c,
            Err(_) => {
                m.serve_rejected_total.inc();
                return None;
            }
        };
        let reserved = self.shared.live.fetch_add(1, Ordering::Relaxed);
        if reserved >= self.cfg.max_conns {
            // Overload: answer in-band, flush, close.
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
            m.serve_rejected_total.inc();
            c.push_notice(&format!(
                "error: server full ({} connections)",
                self.cfg.max_conns
            ));
            c.closing = true;
        } else {
            m.serve_accepted_total.inc();
            c.counted_live = true;
            self.local_live += 1;
        }
        self.shared.open.fetch_add(1, Ordering::Relaxed);
        let interest = desired_interest(&c, self.cfg.write_buf_cap);
        let fd = c.raw_fd();
        let token = match self.free.pop() {
            Some(t) => {
                self.slab[t] = Some(c);
                t
            }
            None => {
                self.slab.push(Some(c));
                self.interests.push(Interest::default());
                self.slab.len() - 1
            }
        };
        if self.poller.register(fd, token, interest).is_err() {
            // A socket the backend cannot watch cannot be served.
            self.remove(token, false);
            m.serve_rejected_total.inc();
            return None;
        }
        self.interests[token] = interest;
        self.publish_active();
        Some(token)
    }

    /// One service round for one connection: flush, read-and-execute
    /// unless closing/backpressured, flush the fresh output, then
    /// close-bookkeeping. Returns whether any byte moved.
    fn service(&mut self, token: usize, epoch: &Arc<QueryEngine>) -> bool {
        let m = Arc::clone(&self.m);
        let Some(c) = self.slab.get_mut(token).and_then(|s| s.as_mut()) else {
            // Stale readiness for a slot freed (or reused) this round.
            return false;
        };
        let now = Instant::now();
        let mut progressed = false;
        let mut drop_conn = false;
        match c.flush() {
            Ok(n) if n > 0 => {
                progressed = true;
                m.serve_bytes_out_total.add(n);
                c.last_activity = now;
            }
            Ok(_) => {}
            Err(_) => drop_conn = true,
        }
        let backpressured = c.pending_write() > self.cfg.write_buf_cap;
        if !drop_conn && !c.closing && !backpressured {
            match c.read_and_process(epoch, &mut self.rbuf) {
                Ok(out) => {
                    if out.bytes_in > 0 {
                        progressed = true;
                        m.serve_bytes_in_total.add(out.bytes_in);
                        c.last_activity = now;
                    }
                    m.serve_errors_total.add(out.errors);
                    if out.eof {
                        c.closing = true;
                    }
                    if out.shutdown {
                        self.shutdown.store(true, Ordering::Relaxed);
                    }
                }
                Err(_) => drop_conn = true,
            }
            if !drop_conn {
                // Push freshly rendered responses out in the same round;
                // leftovers stay for the next one.
                match c.flush() {
                    Ok(n) if n > 0 => {
                        progressed = true;
                        m.serve_bytes_out_total.add(n);
                        c.last_activity = now;
                    }
                    Ok(_) => {}
                    Err(_) => drop_conn = true,
                }
            }
        }
        m.serve_write_buf_peak_bytes
            .set_max(c.pending_write() as f64);
        if !drop_conn && c.wants_close() {
            // Done and fully flushed: half-close, then linger discarding
            // the peer's remaining input — closing with unread bytes
            // queued would RST away the final responses. The idle
            // timeout bounds the linger if the peer never hangs up.
            c.send_fin();
            match c.discard_input(&mut self.rbuf) {
                Ok(true) | Err(_) => drop_conn = true,
                Ok(false) => {}
            }
        }
        // `active` counts live sessions; closing connections are drains
        // in progress, not service.
        if c.counted_live && c.closing {
            c.counted_live = false;
            self.local_live -= 1;
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
            self.publish_active();
        }
        if drop_conn {
            self.remove(token, false);
        } else {
            self.update_interest(token);
        }
        progressed
    }

    /// Drops a connection: poller deregistration, slab slot reuse,
    /// shared-counter release, optional shed accounting.
    fn remove(&mut self, token: usize, shed: bool) {
        if let Some(mut c) = self.slab.get_mut(token).and_then(|s| s.take()) {
            if shed {
                self.m.serve_shed_idle_total.inc();
            }
            if c.counted_live {
                c.counted_live = false;
                self.local_live -= 1;
                self.shared.live.fetch_sub(1, Ordering::Relaxed);
            }
            let _ = self.poller.deregister(c.raw_fd(), token);
            drop(c);
            self.shared.open.fetch_sub(1, Ordering::Relaxed);
            self.free.push(token);
            self.publish_active();
        }
    }

    /// Re-submits a connection's interest when it changed: read while
    /// not backpressured (or while discarding a closing connection's
    /// input), write only while output is pending — so an idle epoll
    /// connection parks with read-only interest and costs nothing.
    fn update_interest(&mut self, token: usize) {
        let Some(c) = self.slab.get(token).and_then(|s| s.as_ref()) else {
            return;
        };
        let want = desired_interest(c, self.cfg.write_buf_cap);
        if self.interests[token] != want {
            let fd = c.raw_fd();
            if self.poller.reregister(fd, token, want).is_err() {
                self.remove(token, false);
                return;
            }
            self.interests[token] = want;
        }
    }

    /// The periodic pass: shed idle connections and republish the
    /// write-buffer gauges (per-shard and the cross-shard aggregate).
    fn maintain(&mut self, now: Instant) {
        let mut shed_tokens: Vec<usize> = Vec::new();
        let mut pending_total = 0u64;
        for (token, slot) in self.slab.iter().enumerate() {
            if let Some(c) = slot {
                pending_total += c.pending_write() as u64;
                if now.duration_since(c.last_activity) > self.cfg.idle_timeout {
                    // Slow or silent peers (including permanently
                    // backpressured ones) are shed, not kept forever.
                    shed_tokens.push(token);
                }
            }
        }
        for token in shed_tokens {
            self.remove(token, true);
        }
        self.shared.wbuf[self.id].store(pending_total, Ordering::Relaxed);
        let total: u64 = self
            .shared
            .wbuf
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .sum();
        self.m.serve_write_buf_bytes.set_u64(total);
        if let Some((active, wbuf)) = &self.gauges {
            active.set_u64(self.local_live as u64);
            wbuf.set_u64(pending_total);
        }
        self.publish_active();
    }

    /// Mirrors the shared live-session count into the aggregate gauge
    /// (and this shard's labeled instance).
    fn publish_active(&self) {
        self.m
            .serve_active_connections
            .set_u64(self.shared.live.load(Ordering::Relaxed) as u64);
        if let Some((active, _)) = &self.gauges {
            active.set_u64(self.local_live as u64);
        }
    }

    /// Graceful drain: give every connection one short window to take
    /// its buffered responses — flush, half-close (FIN after the last
    /// byte), then discard the peer's remaining input until it closes
    /// too, so no final response is lost to a RST. The deadline bounds
    /// peers that neither read nor hang up.
    fn drain(&mut self) {
        let mut conns: Vec<Conn> = self.slab.iter_mut().filter_map(|s| s.take()).collect();
        for c in &mut conns {
            if c.counted_live {
                c.counted_live = false;
                self.local_live -= 1;
                self.shared.live.fetch_sub(1, Ordering::Relaxed);
            }
            self.shared.open.fetch_sub(1, Ordering::Relaxed);
        }
        let m = Arc::clone(&self.m);
        let deadline = Instant::now()
            + self
                .cfg
                .poll_interval
                .max(std::time::Duration::from_millis(1))
                * 200;
        while !conns.is_empty() && Instant::now() < deadline {
            let mut moved = false;
            conns.retain_mut(|c| {
                match c.flush() {
                    Ok(n) if n > 0 => {
                        moved = true;
                        m.serve_bytes_out_total.add(n);
                    }
                    Ok(_) => {}
                    Err(_) => return false,
                }
                if c.pending_write() > 0 {
                    return true;
                }
                c.send_fin();
                !matches!(c.discard_input(&mut self.rbuf), Ok(true) | Err(_))
            });
            if !moved {
                std::thread::sleep(self.cfg.poll_interval);
            }
        }
        self.publish_active();
    }
}

/// What should wake the loop for this connection right now.
fn desired_interest(c: &Conn, write_buf_cap: usize) -> Interest {
    let pending = c.pending_write();
    Interest {
        // A closing connection is read only in its discard phase (fully
        // flushed, waiting for the peer's close); reading it earlier
        // would busy-wake a level-triggered backend on input the state
        // machine refuses to consume. A live connection reads unless
        // backpressured.
        read: if c.closing {
            pending == 0
        } else {
            pending <= write_buf_cap
        },
        write: pending > 0,
    }
}
