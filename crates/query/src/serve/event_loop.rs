//! The readiness poll loop: one thread, every socket nonblocking, each
//! iteration drains whatever the kernel has ready — accepts, reads,
//! batch execution, writes — and sleeps a tick only when nothing moved.
//!
//! std-only by design (the build has no registry access, so no mio or
//! tokio): readiness is discovered by attempting the nonblocking call
//! and treating `WouldBlock` as "not ready", which on loopback-scale
//! connection counts (tens to hundreds) costs microseconds per sweep.

use std::io::{self};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::engine::QueryEngine;
use crate::serve::conn::Conn;
use crate::serve::{ServeConfig, ServeStats};

/// The serve loop's window onto the engine's metrics registry. The
/// counters themselves live in [`crate::metrics::QueryMetrics`] (so the
/// `metrics` exposition, the interval emitter, and [`ServeStats`] all
/// read the same atomics); this wrapper pins the `Arc` identity once —
/// in live mode every published epoch shares the base engine's registry,
/// so the handle stays valid across epoch swaps.
#[derive(Debug)]
pub(crate) struct StatsInner {
    metrics: Arc<crate::metrics::QueryMetrics>,
}

impl StatsInner {
    /// [`ServeStats`] is a *view*: every field reads registry atomics
    /// (or live engine state), so a snapshot taken mid-load and the
    /// `metrics` exposition can never disagree.
    fn snapshot(&self, started: Instant, engine: &QueryEngine) -> ServeStats {
        let (rov_queries, hijack_queries, leak_queries) = engine.sec_query_counts();
        let cache = engine.rov_cache_stats();
        let m = &self.metrics;
        ServeStats {
            accepted: m.serve_accepted_total.get(),
            rejected: m.serve_rejected_total.get(),
            active: m.serve_active_connections.get() as u64,
            queries: m.total_queries(),
            errors: m.serve_errors_total.get(),
            bytes_in: m.serve_bytes_in_total.get(),
            bytes_out: m.serve_bytes_out_total.get(),
            shed_idle: m.serve_shed_idle_total.get(),
            max_write_buf: m.serve_write_buf_peak_bytes.get() as u64,
            rov_queries,
            hijack_queries,
            leak_queries,
            rov_cache_hits: cache.hits,
            rov_cache_misses: cache.misses,
            tier: engine.tier_stats(),
            elapsed: started.elapsed(),
        }
    }
}

/// Where the serve loop gets its world: one frozen engine for the
/// server's lifetime, or a live publication handle whose **current
/// epoch** is loaded once per processing round — so every batch (and
/// every listing) runs against one consistent world even while the
/// writer publishes the next snapshot.
#[derive(Debug, Clone)]
pub enum EngineSource {
    /// One immutable engine (the pre-live behavior, byte-identical).
    Frozen(Arc<QueryEngine>),
    /// Epoch-published engines from a live ingest writer.
    Live(Arc<crate::live::LiveHandle>),
}

impl EngineSource {
    /// The engine to run the next batch against.
    pub fn current(&self) -> Arc<QueryEngine> {
        match self {
            EngineSource::Frozen(e) => Arc::clone(e),
            EngineSource::Live(h) => h.current(),
        }
    }
}

/// A remote control for a running [`Server`]: request shutdown and read
/// live stats from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    engine: EngineSource,
}

impl ServerHandle {
    /// Asks the serve loop to stop (it notices within one poll tick,
    /// flushes every connection, and returns its final stats).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// A live snapshot of the server's counters, read against one
    /// consistent epoch.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot(self.started, &self.engine.current())
    }
}

/// The TCP front end: a bound listener plus the shared engine, run by
/// [`Server::run`] until a `shutdown` control line or
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: EngineSource,
    cfg: ServeConfig,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
}

impl Server {
    /// Binds the listener and prepares the loop. The engine is shared by
    /// `Arc`: the caller keeps its clone for direct queries (tests
    /// compare served responses against `engine.execute`).
    pub fn bind(
        engine: Arc<QueryEngine>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Server::with_listener(engine, TcpListener::bind(addr)?, cfg)
    }

    /// Wraps an already-bound listener (lets a caller validate the
    /// address *before* building an engine, as `rpi-queryd --listen`
    /// does). The listener is switched to nonblocking mode here.
    pub fn with_listener(
        engine: Arc<QueryEngine>,
        listener: TcpListener,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Server::with_listener_source(EngineSource::Frozen(engine), listener, cfg)
    }

    /// [`Server::bind`] over any [`EngineSource`] — what a live daemon
    /// uses to serve epoch-published engines while the writer ingests.
    pub fn bind_source(
        source: EngineSource,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Server::with_listener_source(source, TcpListener::bind(addr)?, cfg)
    }

    /// [`Server::with_listener`] over any [`EngineSource`].
    pub fn with_listener_source(
        engine: EngineSource,
        listener: TcpListener,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        listener.set_nonblocking(true)?;
        let stats = Arc::new(StatsInner {
            metrics: engine.current().metrics_arc(),
        });
        Ok(Server {
            listener,
            engine,
            cfg,
            stats,
            shutdown: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
        })
    }

    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutdown and live stats, usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stats: Arc::clone(&self.stats),
            shutdown: Arc::clone(&self.shutdown),
            started: self.started,
            engine: self.engine.clone(),
        }
    }

    /// Runs the poll loop until shutdown, returning the final stats
    /// snapshot. Per iteration: accept everything pending (rejecting
    /// over-capacity connections with an in-band notice), then for every
    /// connection drain its write buffer, read-and-batch-execute unless
    /// it is backpressured (pending output over `write_buf_cap`), and
    /// shed it if idle past `idle_timeout`.
    pub fn run(self) -> io::Result<ServeStats> {
        let m = Arc::clone(&self.stats.metrics);
        let mut conns: Vec<Conn> = Vec::new();
        let mut rbuf = vec![0u8; 64 * 1024];
        let mut idle_streak: u32 = 0;
        // Hard bound on open sockets: served sessions plus a bounded tail
        // of closing/rejected ones still draining their final bytes. Past
        // it, over-capacity accepts are dropped outright (no notice, no
        // linger) — under a connection flood, shedding beats running out
        // of file descriptors.
        let hard_conn_cap = self.cfg.max_conns + self.cfg.max_conns.clamp(16, 256);
        while !self.shutdown.load(Ordering::Relaxed) {
            let sweep_start = Instant::now();
            let mut progressed = false;

            // Accept sweep. Capacity is measured against *live* sessions:
            // connections already closing (rejected, quit, EOF) are
            // draining, not serving, and must not lock new clients out.
            let mut live = conns.iter().filter(|c| !c.closing).count();
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        progressed = true;
                        if conns.len() >= hard_conn_cap {
                            m.serve_rejected_total.inc();
                            drop(stream);
                            continue;
                        }
                        match Conn::new(stream, self.cfg.max_line_len) {
                            Ok(mut c) => {
                                if live >= self.cfg.max_conns {
                                    // Overload: answer in-band, flush, close.
                                    m.serve_rejected_total.inc();
                                    c.push_notice(&format!(
                                        "error: server full ({} connections)",
                                        self.cfg.max_conns
                                    ));
                                    c.closing = true;
                                } else {
                                    m.serve_accepted_total.inc();
                                    live += 1;
                                }
                                conns.push(c);
                            }
                            Err(_) => {
                                m.serve_rejected_total.inc();
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    // Transient accept errors (peer reset mid-handshake)
                    // must not kill the server.
                    Err(_) => break,
                }
            }

            // Connection sweep. The epoch is loaded once per sweep:
            // every batch processed this round — queries and listings
            // alike — sees one consistent world, and a live writer
            // publishing mid-sweep is observed only from the next sweep.
            let epoch = self.engine.current();
            let now = Instant::now();
            let mut i = 0;
            let mut pending_total = 0u64;
            while i < conns.len() {
                let mut drop_conn = false;
                let mut shed = false;
                {
                    let c = &mut conns[i];
                    match c.flush() {
                        Ok(n) if n > 0 => {
                            progressed = true;
                            m.serve_bytes_out_total.add(n);
                            c.last_activity = now;
                        }
                        Ok(_) => {}
                        Err(_) => drop_conn = true,
                    }
                    let backpressured = c.pending_write() > self.cfg.write_buf_cap;
                    if !drop_conn && !c.closing && !backpressured {
                        match c.read_and_process(&epoch, &mut rbuf) {
                            Ok(out) => {
                                if out.bytes_in > 0 {
                                    progressed = true;
                                    m.serve_bytes_in_total.add(out.bytes_in);
                                    c.last_activity = now;
                                }
                                m.serve_errors_total.add(out.errors);
                                if out.eof {
                                    c.closing = true;
                                }
                                if out.shutdown {
                                    self.shutdown.store(true, Ordering::Relaxed);
                                }
                            }
                            Err(_) => drop_conn = true,
                        }
                        if !drop_conn {
                            // Push freshly rendered responses out in the
                            // same tick; leftovers stay for the next sweep.
                            match c.flush() {
                                Ok(n) if n > 0 => {
                                    progressed = true;
                                    m.serve_bytes_out_total.add(n);
                                    c.last_activity = now;
                                }
                                Ok(_) => {}
                                Err(_) => drop_conn = true,
                            }
                        }
                    }
                    let pending = c.pending_write() as u64;
                    pending_total += pending;
                    m.serve_write_buf_peak_bytes.set_max(pending as f64);
                    if !drop_conn && c.wants_close() {
                        // Done and fully flushed: half-close, then linger
                        // discarding the peer's remaining input — closing
                        // with unread bytes queued would RST away the
                        // final responses. The idle timeout below bounds
                        // the linger if the peer never hangs up.
                        c.send_fin();
                        match c.discard_input(&mut rbuf) {
                            Ok(true) | Err(_) => drop_conn = true,
                            Ok(false) => {}
                        }
                    }
                    if !drop_conn && now.duration_since(c.last_activity) > self.cfg.idle_timeout {
                        // Slow or silent peers (including permanently
                        // backpressured ones) are shed, not kept forever.
                        drop_conn = true;
                        shed = true;
                    }
                }
                if drop_conn {
                    if shed {
                        m.serve_shed_idle_total.inc();
                    }
                    conns.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            // `active` counts live sessions; closing connections are
            // drains in progress, not service.
            m.serve_active_connections
                .set_u64(conns.iter().filter(|c| !c.closing).count() as u64);
            m.serve_write_buf_bytes.set_u64(pending_total);

            if progressed {
                idle_streak = 0;
                // Only sweeps that moved bytes are worth timing: an idle
                // tick measures the backoff sleep, not the loop.
                m.serve_sweep_seconds.record(sweep_start.elapsed());
            } else {
                // Idle backoff with a grace window: the first few quiet
                // sweeps keep the 200 µs tick (a pipelining client's
                // inter-window gap must not cost latency), then the
                // sleep decays exponentially to ~64× the tick (≈13 ms
                // default), so an open-but-quiet server burns almost no
                // CPU while wakeup latency stays invisible at protocol
                // scale.
                idle_streak = idle_streak.saturating_add(1);
                let decay = idle_streak.saturating_sub(8).min(6);
                std::thread::sleep(self.cfg.poll_interval * (1u32 << decay));
            }
        }

        // Graceful drain: give every connection one short window to take
        // its buffered responses — flush, half-close (FIN after the last
        // byte), then discard the peer's remaining input until it closes
        // too, so no final response is lost to a RST. The deadline bounds
        // peers that neither read nor hang up.
        let deadline = Instant::now()
            + self
                .cfg
                .poll_interval
                .max(std::time::Duration::from_millis(1))
                * 200;
        while !conns.is_empty() && Instant::now() < deadline {
            let mut moved = false;
            conns.retain_mut(|c| {
                match c.flush() {
                    Ok(n) if n > 0 => {
                        moved = true;
                        m.serve_bytes_out_total.add(n);
                    }
                    Ok(_) => {}
                    Err(_) => return false,
                }
                if c.pending_write() > 0 {
                    return true;
                }
                c.send_fin();
                !matches!(c.discard_input(&mut rbuf), Ok(true) | Err(_))
            });
            if !moved {
                std::thread::sleep(self.cfg.poll_interval);
            }
        }
        drop(conns);
        m.serve_active_connections.set_u64(0);
        Ok(self.stats.snapshot(self.started, &self.engine.current()))
    }
}
