//! The per-connection state machine: nonblocking reads feed the
//! [`LineFramer`], completed frames are classified by the shared
//! [`session`](super::session) semantics, every parseable query in the
//! read is executed as **one** engine batch (pipelining), and rendered
//! responses accumulate in a bounded write buffer that drains as the
//! socket accepts bytes.
//!
//! Partial reads and partial writes are normal states, not errors: a
//! query split across two TCP segments reassembles in the framer, and a
//! response the peer is slow to read simply stays buffered (until the
//! event loop's backpressure cap stops further reads, and eventually the
//! idle timeout sheds the connection).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::engine::QueryEngine;
use crate::proto::{render_response, Control, Frame, LineFramer};
use crate::serve::session::{classify_line, repl_reply, Line};

/// What one read-and-process step observed.
#[derive(Debug, Default)]
pub(crate) struct ReadOutcome {
    /// Bytes consumed from the socket.
    pub bytes_in: u64,
    /// In-band error responses emitted (garbage + oversized lines and
    /// execution errors).
    pub errors: u64,
    /// The peer half-closed (EOF): flush what remains, then close.
    pub eof: bool,
    /// A `shutdown` control line arrived: stop the whole server.
    pub shutdown: bool,
}

/// One client connection.
pub(crate) struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    max_line_len: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// After `quit`/`shutdown`/EOF: stop reading, flush, then close.
    pub(crate) closing: bool,
    /// Whether this connection is counted in the shared live-session
    /// total (set at admission, cleared exactly once on the closing
    /// transition or the drop — whichever the shard sees first).
    pub(crate) counted_live: bool,
    /// Write side half-closed (FIN sent after the final flush).
    fin_sent: bool,
    /// Last instant any byte moved in either direction.
    pub(crate) last_activity: Instant,
    /// When the listener handed us this socket — the start of the
    /// accept-to-first-byte latency measurement.
    accepted_at: Instant,
    /// Whether the first request byte has been seen (the latency above
    /// is recorded exactly once, on that byte).
    saw_first_byte: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_line_len: usize) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Responses are written in one buffered burst per batch; disabling
        // Nagle keeps pipelined round trips from waiting on delayed ACKs.
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            framer: LineFramer::new(max_line_len),
            max_line_len,
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            counted_live: false,
            fin_sent: false,
            last_activity: Instant::now(),
            accepted_at: Instant::now(),
            saw_first_byte: false,
        })
    }

    /// Half-closes the write side once (after the final flush), so the
    /// peer sees the last response followed by FIN.
    pub(crate) fn send_fin(&mut self) {
        if !self.fin_sent {
            let _ = self.stream.shutdown(std::net::Shutdown::Write);
            self.fin_sent = true;
        }
    }

    /// Drains and discards whatever the peer is still sending to a
    /// closing connection. Dropping a socket with unread bytes queued
    /// turns the close into a RST, which can destroy the final in-flight
    /// responses (including the `server full` rejection notice) — so a
    /// closing connection lingers, discarding input, until the peer
    /// closes too (`Ok(true)`: safe to drop) or the idle timeout sheds
    /// it.
    pub(crate) fn discard_input(&mut self, rbuf: &mut [u8]) -> io::Result<bool> {
        loop {
            match self.stream.read(rbuf) {
                Ok(0) => return Ok(true),
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Bytes queued but not yet accepted by the socket.
    pub(crate) fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The raw fd the readiness backend keys on (unused by the sweep
    /// backend, which is the only one off unix).
    pub(crate) fn raw_fd(&self) -> i32 {
        crate::serve::poll::fd_of(&self.stream)
    }

    /// `true` once the connection is done and fully flushed.
    pub(crate) fn wants_close(&self) -> bool {
        self.closing && self.pending_write() == 0
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// Returns the bytes written; `WouldBlock` is a normal partial write.
    pub(crate) fn flush(&mut self) -> io::Result<u64> {
        let mut written = 0u64;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.wpos += n;
                    written += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 64 * 1024 {
            // Reclaim the drained prefix so a long-lived slow reader does
            // not hold its whole history in memory.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(written)
    }

    /// One nonblocking read, then frame/classify/execute/render. All the
    /// read's parseable queries go through the engine as a single batch,
    /// so a client that writes N lines per segment gets the planner's
    /// shard-parallel execution for free.
    pub(crate) fn read_and_process(
        &mut self,
        engine: &QueryEngine,
        rbuf: &mut [u8],
    ) -> io::Result<ReadOutcome> {
        let mut out = ReadOutcome::default();
        let n = match self.stream.read(rbuf) {
            Ok(0) => {
                // EOF still answers a final unterminated line — the
                // stdin path would (str::lines yields it), and the TCP
                // path must match it byte for byte.
                let tail: Vec<Frame> = self.framer.finish().into_iter().collect();
                if !tail.is_empty() {
                    self.process_frames(engine, tail, &mut out);
                }
                out.eof = true;
                return Ok(out);
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(out),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(out),
            Err(e) => return Err(e),
        };
        out.bytes_in = n as u64;
        if !self.saw_first_byte {
            self.saw_first_byte = true;
            engine
                .metrics()
                .serve_accept_to_first_byte_seconds
                .record(self.accepted_at.elapsed());
        }
        let frames = self.framer.push(&rbuf[..n]);
        self.process_frames(engine, frames, &mut out);
        Ok(out)
    }

    /// Classifies the completed frames (stopping at a session-ending
    /// control), batch-executes the queries among them, and renders
    /// every output line *in input order* into the write buffer.
    fn process_frames(&mut self, engine: &QueryEngine, frames: Vec<Frame>, out: &mut ReadOutcome) {
        // The raw text rides along so a slow segment can quote its first
        // query verbatim in the slowlog.
        let mut items: Vec<(usize, Line, String)> = Vec::with_capacity(frames.len());
        for frame in frames {
            match frame {
                Frame::Line { line, text } => {
                    let class = classify_line(&text);
                    let ends = matches!(
                        class,
                        Line::Control(Control::Quit) | Line::Control(Control::Shutdown)
                    );
                    items.push((line, class, text));
                    if ends {
                        // Lines pipelined after a quit are not executed —
                        // the same contract as a `--queries` file.
                        break;
                    }
                }
                Frame::Oversized { line, length } => items.push((
                    line,
                    Line::Bad(format!(
                        "line too long ({length}+ bytes, cap {})",
                        self.max_line_len
                    )),
                    String::new(),
                )),
            }
        }

        // Pipelining: every REPL-free run of this read's queries is one
        // engine batch. REPL listings split the runs: a listing reports
        // live engine counters (ROV cache stats, per-verb counts), so it
        // must observe the engine exactly where a line-by-line stdin
        // session would — queries pipelined *after* it in the same read
        // execute only after its reply is rendered.
        let mut start = 0;
        loop {
            let end = items[start..]
                .iter()
                .position(|(_, l, _)| matches!(l, Line::Repl(_)))
                .map_or(items.len(), |p| start + p);
            self.run_segment(engine, &items[start..end], out);
            let Some((_, Line::Repl(cmd), _)) = items.get(end) else {
                break;
            };
            let reply = repl_reply(engine, *cmd);
            self.push_output(&reply);
            start = end + 1;
        }
    }

    /// Executes one REPL-free run of classified lines — its queries as a
    /// single engine batch (a lone query skips the batch planner's thread
    /// scaffolding) — rendering every output line in input order.
    fn run_segment(
        &mut self,
        engine: &QueryEngine,
        segment: &[(usize, Line, String)],
        out: &mut ReadOutcome,
    ) {
        let reqs: Vec<_> = segment
            .iter()
            .filter_map(|(_, l, _)| match l {
                Line::Query(req) => Some(req.clone()),
                _ => None,
            })
            .collect();
        // Latency is the whole segment — execute *and* render — because
        // that is what the client observes between its last pipelined
        // byte and the first response byte being queued. Every query in
        // the segment is attributed the segment's wall time.
        let seg_start = (!reqs.is_empty()).then(Instant::now);
        let mut answers = if reqs.len() > 1 {
            engine.execute_batch(&reqs).into_iter()
        } else {
            reqs.iter()
                .map(|r| engine.execute(r))
                .collect::<Vec<_>>()
                .into_iter()
        };

        for (line_no, item, _) in segment {
            match item {
                Line::Skip => {}
                Line::Control(Control::Ping) => self.push_output("pong"),
                Line::Control(Control::Quit) => self.closing = true,
                Line::Control(Control::Shutdown) => {
                    self.closing = true;
                    out.shutdown = true;
                }
                Line::Repl(_) => unreachable!("segments are split at REPL commands"),
                Line::Query(req) => match answers.next().expect("one answer per batched query") {
                    Ok(resp) => self.push_output(&render_response(req, &resp)),
                    Err(e) => {
                        out.errors += 1;
                        self.push_output(&format!("error line {line_no}: {e}"));
                    }
                },
                Line::Bad(msg) => {
                    out.errors += 1;
                    self.push_output(&format!("error line {line_no}: {msg}"));
                }
            }
        }

        if let Some(t0) = seg_start {
            let elapsed = t0.elapsed();
            let m = engine.metrics();
            for req in &reqs {
                let v = req.query.verb_index();
                m.serve_queries_total[v].inc();
                m.serve_query_seconds[v].record(elapsed);
            }
            if m.slow_threshold().is_some_and(|thr| elapsed >= thr) {
                let first = segment
                    .iter()
                    .find_map(|(_, l, text)| matches!(l, Line::Query(_)).then_some(text.trim()))
                    .unwrap_or("");
                m.push_slow(elapsed, reqs.len() as u64, first);
            }
        }
    }

    fn push_output(&mut self, text: &str) {
        self.wbuf.extend_from_slice(text.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Queues a server-originated notice (used for overload rejection).
    pub(crate) fn push_notice(&mut self, text: &str) {
        self.push_output(text);
    }
}
