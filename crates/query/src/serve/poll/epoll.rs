//! The Linux readiness backend over the audited [`rpi_epoll`] shim.
//!
//! Level-triggered: a socket with unread input (or unflushed output
//! space) is reported on every wait until the condition clears, so the
//! loop needs no readiness bookkeeping of its own — it just keeps each
//! connection's [`Interest`] current (read off under backpressure,
//! write on only while output is pending) and quiet connections cost
//! nothing.

use std::io;
use std::time::Duration;

use super::{Interest, Poller, LISTENER_TOKEN};

/// Tokens are slab indices plus [`LISTENER_TOKEN`] (`usize::MAX`);
/// epoll carries them verbatim in its 64-bit user data.
#[derive(Debug)]
struct EpollPoller {
    ep: rpi_epoll::Epoll,
    events: Vec<rpi_epoll::Event>,
}

pub(crate) fn make() -> io::Result<Box<dyn Poller>> {
    Ok(Box::new(EpollPoller {
        ep: rpi_epoll::Epoll::new()?,
        events: Vec::new(),
    }))
}

impl Poller for EpollPoller {
    fn register(&mut self, fd: i32, token: usize, interest: Interest) -> io::Result<()> {
        self.ep.add(fd, token as u64, interest.read, interest.write)
    }

    fn reregister(&mut self, fd: i32, token: usize, interest: Interest) -> io::Result<()> {
        self.ep
            .modify(fd, token as u64, interest.read, interest.write)
    }

    fn deregister(&mut self, fd: i32, _token: usize) -> io::Result<()> {
        self.ep.delete(fd)
    }

    fn wait(&mut self, timeout: Duration, ready: &mut Vec<usize>) -> io::Result<()> {
        self.ep.wait(timeout, &mut self.events)?;
        ready.clear();
        // The listener is serviced last so connection work (including
        // closes that free capacity) lands before this wait's accepts.
        let mut accept = false;
        for ev in &self.events {
            if ev.token == LISTENER_TOKEN as u64 {
                accept = true;
            } else {
                ready.push(ev.token as usize);
            }
        }
        if accept {
            ready.push(LISTENER_TOKEN);
        }
        Ok(())
    }
}
