//! The portable attempt-and-`WouldBlock` backend: every wait reports
//! every registered token ready, sleeping the requested timeout first —
//! exactly the original single-loop behavior, factored behind the
//! [`Poller`] trait so the epoll path and this one share one event
//! loop.

use std::io;
use std::time::Duration;

use super::{Interest, Poller};

/// Registered tokens in insertion order (the order the old loop swept
/// its connection vector).
#[derive(Debug, Default)]
pub(crate) struct SweepPoller {
    tokens: Vec<usize>,
}

impl SweepPoller {
    pub(crate) fn new() -> SweepPoller {
        SweepPoller::default()
    }
}

impl Poller for SweepPoller {
    fn register(&mut self, _fd: i32, token: usize, _interest: Interest) -> io::Result<()> {
        if !self.tokens.contains(&token) {
            self.tokens.push(token);
        }
        Ok(())
    }

    fn reregister(&mut self, _fd: i32, _token: usize, _interest: Interest) -> io::Result<()> {
        // Interest is advisory here: the connection code re-discovers
        // readiness by attempting the syscall regardless.
        Ok(())
    }

    fn deregister(&mut self, _fd: i32, token: usize) -> io::Result<()> {
        self.tokens.retain(|&t| t != token);
        Ok(())
    }

    fn wait(&mut self, timeout: Duration, ready: &mut Vec<usize>) -> io::Result<()> {
        if !timeout.is_zero() {
            std::thread::sleep(timeout);
        }
        ready.clear();
        ready.extend_from_slice(&self.tokens);
        Ok(())
    }
}
