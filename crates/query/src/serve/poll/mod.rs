//! Readiness backends for the serve loop, behind one small trait.
//!
//! The loop's structure is backend-independent: register sockets with
//! an [`Interest`], call [`Poller::wait`], service the returned tokens.
//! What differs is how readiness is *discovered*:
//!
//! * [`sweep`] — the portable fallback (the original PR 5 design):
//!   every registered token is reported ready on every wait, and the
//!   connection code discovers actual readiness by attempting the
//!   nonblocking syscall and treating `WouldBlock` as "not ready".
//!   O(conns) per sweep — fine at loopback scale, the only option off
//!   Linux.
//! * [`epoll`] — real kernel readiness notification via the audited
//!   [`rpi_epoll`] shim: a quiet connection costs *nothing* per wait,
//!   which is what lets one daemon hold 10k+ idle connections at ~zero
//!   CPU. Level-triggered, so a socket with unconsumed bytes stays
//!   ready and the service order bookkeeping stays in the kernel.
//!
//! Selection: `--backend sweep|epoll|auto` on the daemon, the
//! `RPI_SERVE_BACKEND` environment variable anywhere a
//! [`ServeConfig`](crate::serve::ServeConfig) is defaulted (this is how
//! the CI backend matrix drives every existing test through both
//! implementations without modification), `auto` picking epoll exactly
//! where it is supported.

mod epoll;
mod sweep;

use std::io;
use std::time::Duration;

/// Which readiness implementation the serve loop runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollBackend {
    /// Attempt-and-`WouldBlock` sweep over every connection (portable).
    Sweep,
    /// Kernel readiness notification via `epoll(7)` (Linux).
    Epoll,
}

impl PollBackend {
    /// The best backend this platform supports.
    pub fn auto() -> PollBackend {
        if rpi_epoll::SUPPORTED {
            PollBackend::Epoll
        } else {
            PollBackend::Sweep
        }
    }

    /// Whether this backend can actually run here.
    pub fn supported(self) -> bool {
        match self {
            PollBackend::Sweep => true,
            PollBackend::Epoll => rpi_epoll::SUPPORTED,
        }
    }

    /// This backend if supported, else the portable fallback — what an
    /// environment override resolves through, so `RPI_SERVE_BACKEND=epoll`
    /// on a non-Linux host degrades instead of failing every test.
    pub fn effective(self) -> PollBackend {
        if self.supported() {
            self
        } else {
            PollBackend::Sweep
        }
    }

    /// The `RPI_SERVE_BACKEND` override (`sweep`/`epoll`/`auto`), or
    /// [`PollBackend::auto`] when unset or unparseable.
    pub fn from_env() -> PollBackend {
        match std::env::var("RPI_SERVE_BACKEND") {
            Ok(v) => v.parse().unwrap_or_else(|_| PollBackend::auto()),
            Err(_) => PollBackend::auto(),
        }
    }

    /// The CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            PollBackend::Sweep => "sweep",
            PollBackend::Epoll => "epoll",
        }
    }
}

impl std::fmt::Display for PollBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PollBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<PollBackend, String> {
        match s {
            "sweep" => Ok(PollBackend::Sweep),
            "epoll" => Ok(PollBackend::Epoll),
            "auto" => Ok(PollBackend::auto()),
            other => Err(format!(
                "unknown backend '{other}' (expected sweep|epoll|auto)"
            )),
        }
    }
}

/// The token [`Shard`](crate::serve::event_loop) registers its listener
/// under; connection tokens are slab indices, which stay far below it.
pub(crate) const LISTENER_TOKEN: usize = usize::MAX;

/// What a registered socket should wake the loop for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Interest {
    pub read: bool,
    pub write: bool,
}

/// One readiness backend instance (one per shard thread).
pub(crate) trait Poller: Send {
    /// Starts watching `fd` under `token`.
    fn register(&mut self, fd: i32, token: usize, interest: Interest) -> io::Result<()>;
    /// Replaces the interest of an already-registered `fd`.
    fn reregister(&mut self, fd: i32, token: usize, interest: Interest) -> io::Result<()>;
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: i32, token: usize) -> io::Result<()>;
    /// Blocks up to `timeout` (zero = poll) and fills `ready` with the
    /// tokens to service. Spurious readiness is allowed (the sweep
    /// backend is *all* spurious readiness); missed readiness is not.
    fn wait(&mut self, timeout: Duration, ready: &mut Vec<usize>) -> io::Result<()>;
}

/// Instantiates `backend` (resolved through [`PollBackend::effective`]).
pub(crate) fn make_poller(backend: PollBackend) -> io::Result<Box<dyn Poller>> {
    match backend.effective() {
        PollBackend::Sweep => Ok(Box::new(sweep::SweepPoller::new())),
        PollBackend::Epoll => epoll::make(),
    }
}

/// The raw fd a poller keys on. Off unix the sweep backend (the only
/// one that exists there) ignores it entirely.
#[cfg(unix)]
pub(crate) fn fd_of<T: std::os::unix::io::AsRawFd>(sock: &T) -> i32 {
    sock.as_raw_fd()
}

#[cfg(not(unix))]
pub(crate) fn fd_of<T>(_sock: &T) -> i32 {
    -1
}
