//! One session semantics for every front end.
//!
//! A "session" is a stream of grammar lines — the stdin REPL, a
//! `--queries` file, or one TCP connection. This module defines what a
//! line *means* ([`classify_line`]) and renders the REPL listing
//! commands ([`repl_reply`]), so the daemon's stdin path and the
//! [`serve`](crate::serve) front end produce **byte-identical** output
//! for the same lines — the property the CI network smoke diffs.

use rpi_store::SegmentKind;

use crate::engine::QueryEngine;
use crate::proto::{parse, parse_control, Control, ParseError, QueryRequest, GRAMMAR};
use crate::snapshot::{SnapshotId, VantageKind};

/// What the REPL line said, beyond the query grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplCmd {
    /// `help` — the grammar plus the session commands.
    Help,
    /// `snapshots` — one line per ingested snapshot (label, vantage
    /// count, trie sharing, on-disk cost).
    Snapshots,
    /// `archive` — the on-disk segment listing, if the engine was
    /// loaded from (or saved to) an `rpi-store` archive.
    Archive,
    /// `vantages` — every vantage AS and its kind.
    Vantages,
    /// `metrics` — the full Prometheus-style exposition of the engine's
    /// metrics registry (sorted, deterministic key set).
    Metrics,
    /// `metrics names` — just the `name kind` schema of the registry,
    /// value-free so goldens can pin it.
    MetricsNames,
    /// `stats` — per-verb counts and latency percentiles plus the
    /// per-stage timing table, human-shaped.
    Stats,
    /// `slowlog` — the bounded ring of recent slow query segments
    /// (requires `--slow-query-ms`).
    Slowlog,
}

/// The meaning of one session line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// Blank or `#` comment: no output.
    Skip,
    /// A control verb (`ping` / `quit` / `shutdown`).
    Control(Control),
    /// A REPL listing command.
    Repl(ReplCmd),
    /// A grammar query, parsed and ready for the engine.
    Query(QueryRequest),
    /// An unparseable line, with the message a front end should report.
    Bad(String),
}

/// Classifies one line the way the daemon's REPL always has: blank and
/// comment lines are skipped, control and listing verbs are recognized
/// first, everything else goes through the shared protocol grammar.
pub fn classify_line(line: &str) -> Line {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Line::Skip;
    }
    if let Some(c) = parse_control(trimmed) {
        return Line::Control(c);
    }
    match trimmed {
        "help" => return Line::Repl(ReplCmd::Help),
        "snapshots" => return Line::Repl(ReplCmd::Snapshots),
        "archive" => return Line::Repl(ReplCmd::Archive),
        "vantages" => return Line::Repl(ReplCmd::Vantages),
        "metrics" => return Line::Repl(ReplCmd::Metrics),
        "metrics names" => return Line::Repl(ReplCmd::MetricsNames),
        "stats" => return Line::Repl(ReplCmd::Stats),
        "slowlog" => return Line::Repl(ReplCmd::Slowlog),
        _ => {}
    }
    match parse(trimmed) {
        Ok(req) => Line::Query(req),
        // The Display of an unknown-query error lists the whole grammar.
        Err(e @ ParseError::UnknownQuery(_)) => Line::Bad(e.to_string()),
        Err(e) => Line::Bad(format!("{e} (type 'help' for the grammar)")),
    }
}

/// `123 B` / `1.2 KiB` / `3.4 MiB` — the size spelling every listing
/// shares (and the goldens pin).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

/// Renders a listing command exactly as the stdin REPL prints it (no
/// trailing newline; callers add their own framing).
pub fn repl_reply(engine: &QueryEngine, cmd: ReplCmd) -> String {
    match cmd {
        ReplCmd::Help => format!(
            "{GRAMMAR}\nrepl: snapshots (list snapshots), vantages (list vantages), \
             archive (list on-disk segments), stats (per-verb latency percentiles), \
             metrics (Prometheus-style exposition; 'metrics names' for the schema), \
             slowlog (recent slow segments, needs --slow-query-ms), \
             ping, quit, shutdown (stop the whole server)\n\
             serve scale (daemon flags): --backend sweep|epoll|auto picks the \
             readiness backend, --serve-threads N shards connections across N \
             event-loop threads, --idle-timeout SECS tunes connection shedding"
        ),
        ReplCmd::Snapshots => {
            // A tier-attached engine lists residency instead of trie
            // sharing (cold snapshots have no hydrated tries to share,
            // and counting their vantages must not hydrate them).
            let tiered = engine.tier_stats().is_some();
            let mut lines: Vec<String> = engine
                .labels()
                .into_iter()
                .enumerate()
                .map(|(i, l)| {
                    let id = SnapshotId(i as u32);
                    let disk = match engine.segment_meta(id) {
                        Some(meta) => {
                            format!(", disk {} ({})", fmt_bytes(meta.bytes), meta.kind.name())
                        }
                        None => ", disk -".to_string(),
                    };
                    if tiered {
                        let residency = match engine.residency(id) {
                            Some(crate::tier::Residency::Hot) => "hot",
                            _ => "cold",
                        };
                        format!("{i}: {l} ({residency}{disk})")
                    } else {
                        let n = engine.vantages_in(id).len();
                        let sharing = match engine.sharing_with_prev(id) {
                            Some((shared, total)) if shared > 0 => {
                                format!(", {shared}/{total} trie nodes shared with prev")
                            }
                            _ => String::new(),
                        };
                        // Storage next to sharing: what the snapshot
                        // costs on disk when the engine lives in an
                        // archive.
                        format!("{i}: {l} ({n} vantages{sharing}{disk})")
                    }
                })
                .collect();
            if let Some(t) = engine.tier_stats() {
                lines.push(format!(
                    "tier: {}/{} hot (cap {}), {} attaches, {} hydrations, \
                     {} evictions, {} cold hits",
                    t.hot, t.snapshots, t.hot_cap, t.attaches, t.hydrations, t.evictions,
                    t.cold_hits,
                ));
            }
            // Security state rides along: the loaded ROA table and the
            // engine-lifetime ROV/detection counters.
            let cache = engine.rov_cache_stats();
            let (rov, hijacks, leaks) = engine.sec_query_counts();
            lines.push(format!(
                "sec: {} ROAs, rov cache {} hits / {} misses, \
                 queries rov {rov} / hijacks {hijacks} / leaks {leaks}",
                engine.roa_table().len(),
                cache.hits,
                cache.misses,
            ));
            lines.join("\n")
        }
        ReplCmd::Archive => match engine.archive_info() {
            None => "no archive: engine built in memory (load one with --archive, write one with --save)".to_string(),
            Some(info) => {
                let mut lines = vec![format!(
                    "archive {} ({} segments, {} on disk)",
                    info.dir.display(),
                    1 + info.snapshots.len() + usize::from(info.roas.is_some()),
                    fmt_bytes(info.total_bytes() as u64),
                )];
                // Chain structure: each snapshot's replay distance from
                // the nearest keyframe (a self-contained full segment a
                // cold reader can attach to). Pre-keyframe archives have
                // no flagged segments and print no suffixes.
                let mut depths: Vec<Option<usize>> = Vec::with_capacity(info.snapshots.len());
                for meta in &info.snapshots {
                    let depth = if meta.keyframe {
                        Some(0)
                    } else {
                        depths.last().copied().flatten().map(|d| d + 1)
                    };
                    depths.push(depth);
                }
                let mut snap_idx = 0usize;
                let all = std::iter::once(&info.symbols)
                    .chain(&info.snapshots)
                    .chain(&info.roas);
                for meta in all {
                    let label = if meta.label.is_empty() {
                        String::new()
                    } else {
                        format!(" label {}", meta.label)
                    };
                    let chain = match meta.kind {
                        SegmentKind::Full | SegmentKind::Delta => {
                            let d = depths[snap_idx];
                            snap_idx += 1;
                            match d {
                                Some(0) => " [keyframe]".to_string(),
                                Some(d) => format!(" [chain {d}]"),
                                None => String::new(),
                            }
                        }
                        _ => String::new(),
                    };
                    lines.push(format!(
                        "  {}: {} {} {} crc 0x{:08x}{label}{chain}",
                        meta.index,
                        meta.file,
                        meta.kind.name(),
                        fmt_bytes(meta.bytes),
                        meta.crc32,
                    ));
                }
                let keyframes: Vec<String> = info
                    .snapshots
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.keyframe)
                    .map(|(i, _)| i.to_string())
                    .collect();
                if !keyframes.is_empty() {
                    let longest = depths.iter().flatten().max().copied().unwrap_or(0);
                    lines.push(format!(
                        "  keyframes at snapshot {{{}}}; longest replay chain {longest}",
                        keyframes.join(", "),
                    ));
                }
                lines.join("\n")
            }
        },
        ReplCmd::Vantages => {
            let lines: Vec<String> = engine
                .vantages()
                .into_iter()
                .map(|(a, k)| {
                    let kind = match k {
                        VantageKind::LookingGlass => "looking-glass",
                        VantageKind::CollectorPeer => "collector-peer",
                    };
                    format!("{a} ({kind})")
                })
                .collect();
            lines.join("\n")
        }
        // Derived gauges (ROA count, cache ratio, tier residency, epoch
        // age) are synced from engine state at render time so every
        // front end scrapes the same freshness.
        ReplCmd::Metrics => {
            engine.sync_obs();
            // The registry renders newline-terminated; this reply's
            // framing is the caller's (same as every other listing).
            engine.metrics().registry().render().trim_end().to_string()
        }
        ReplCmd::MetricsNames => engine.metrics().registry().schema().trim_end().to_string(),
        ReplCmd::Stats => {
            engine.sync_obs();
            engine.metrics().render_stats()
        }
        ReplCmd::Slowlog => engine.metrics().render_slowlog(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_shape() {
        assert_eq!(classify_line("  "), Line::Skip);
        assert_eq!(classify_line("# comment"), Line::Skip);
        assert_eq!(classify_line("ping"), Line::Control(Control::Ping));
        assert_eq!(classify_line("exit"), Line::Control(Control::Quit));
        assert_eq!(classify_line("snapshots"), Line::Repl(ReplCmd::Snapshots));
        assert_eq!(classify_line("metrics"), Line::Repl(ReplCmd::Metrics));
        assert_eq!(
            classify_line("metrics names"),
            Line::Repl(ReplCmd::MetricsNames)
        );
        assert_eq!(classify_line("stats"), Line::Repl(ReplCmd::Stats));
        assert_eq!(classify_line("slowlog"), Line::Repl(ReplCmd::Slowlog));
        assert!(matches!(
            classify_line("route AS1 1.0.0.0/8"),
            Line::Query(_)
        ));
        assert!(matches!(classify_line("frobnicate AS1"), Line::Bad(_)));
    }
}
