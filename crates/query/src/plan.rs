//! The executor's planning layer: resolving a [`Scope`] against an
//! engine's snapshots, classifying batch requests into shard-affine
//! buckets, and running the buckets in parallel under
//! `std::thread::scope` with per-shard timing.
//!
//! Every query — single or batched, point or history — flows through
//! this planner via [`QueryEngine::execute`] and
//! [`QueryEngine::execute_batch`]; the legacy `route_at_*`/`sa_status_*`
//! methods are thin wrappers over it.

use std::fmt;
use std::time::{Duration, Instant};

use bgp_types::Asn;

use crate::engine::{BatchProfile, QueryEngine};
use crate::proto::{Query, QueryRequest, Response, Scope};
use crate::snapshot::{shard_of, SnapshotId};

/// Why a request could not be executed (as opposed to answering "no":
/// a missing route or unknown AS inside a valid snapshot is a negative
/// [`Response`], not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The engine has no snapshots at all.
    Empty,
    /// The scope names a snapshot id that was never ingested.
    UnknownSnapshot(SnapshotId),
    /// The scope names a label no snapshot carries.
    UnknownLabel(String),
    /// A history scope's range runs backwards (`@3..1`).
    InvertedRange(SnapshotId, SnapshotId),
    /// The query and scope shapes do not fit (e.g. `route … @all`,
    /// `diff @latest`).
    ScopeMismatch {
        /// The query's grammar verb.
        query: &'static str,
        /// What scope shape it needs.
        need: &'static str,
    },
    /// A history query names an AS the engine never saw at ingest time.
    UnknownVantage(Asn),
    /// A cold-tier segment failed its lazy checksum or parse: the engine
    /// refuses to answer from bytes it cannot vouch for. Carries the
    /// segment file and the absolute byte offset of the failure.
    Corrupt {
        /// The segment file inside the archive directory.
        file: String,
        /// Absolute byte offset of the failure within the segment.
        offset: usize,
        /// What was wrong there.
        what: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "no snapshots ingested"),
            QueryError::UnknownSnapshot(id) => write!(f, "no snapshot {}", id.0),
            QueryError::UnknownLabel(l) => write!(f, "no snapshot labeled '{l}'"),
            QueryError::InvertedRange(a, b) => {
                write!(f, "range @{}..{} runs backwards", a.0, b.0)
            }
            QueryError::ScopeMismatch { query, need } => {
                write!(f, "'{query}' needs {need}")
            }
            QueryError::UnknownVantage(a) => write!(f, "{a} was never seen at ingest time"),
            QueryError::Corrupt { file, offset, what } => {
                write!(f, "segment {file} corrupt at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl QueryEngine {
    /// Resolves a scope that must name exactly one snapshot (the shape
    /// every point query needs).
    pub(crate) fn single_scope(
        &self,
        query: &Query,
        scope: &Scope,
    ) -> Result<SnapshotId, QueryError> {
        match scope {
            Scope::Latest => self.latest().ok_or(QueryError::Empty),
            Scope::Id(id) => {
                if id.index() < self.snapshot_count() {
                    Ok(*id)
                } else {
                    Err(QueryError::UnknownSnapshot(*id))
                }
            }
            Scope::Label(l) => self
                .find_label(l)
                .ok_or_else(|| QueryError::UnknownLabel(l.clone())),
            Scope::All | Scope::Range(..) => Err(QueryError::ScopeMismatch {
                query: query.verb(),
                need: "a single snapshot (@latest, @<id>, @label:<name>)",
            }),
        }
    }

    /// Resolves a scope into the ordered snapshot list a history query
    /// walks. Single-snapshot scopes degenerate to a one-element series.
    pub(crate) fn scope_ids(
        &self,
        query: &Query,
        scope: &Scope,
    ) -> Result<Vec<SnapshotId>, QueryError> {
        match scope {
            Scope::Latest | Scope::Id(_) | Scope::Label(_) => {
                Ok(vec![self.single_scope(query, scope)?])
            }
            Scope::All => {
                let n = self.snapshot_count();
                if n == 0 {
                    return Err(QueryError::Empty);
                }
                Ok((0..n as u32).map(SnapshotId).collect())
            }
            Scope::Range(a, b) => {
                if a > b {
                    return Err(QueryError::InvertedRange(*a, *b));
                }
                if b.index() >= self.snapshot_count() {
                    return Err(QueryError::UnknownSnapshot(*b));
                }
                Ok((a.0..=b.0).map(SnapshotId).collect())
            }
        }
    }

    /// Resolves the `from`/`to` pair a `diff` runs between. `@all` means
    /// first→latest; an explicit range may run in either direction
    /// (reverse diffs are meaningful).
    pub(crate) fn diff_scope(&self, scope: &Scope) -> Result<(SnapshotId, SnapshotId), QueryError> {
        match scope {
            Scope::Range(a, b) => {
                for id in [a, b] {
                    if id.index() >= self.snapshot_count() {
                        return Err(QueryError::UnknownSnapshot(*id));
                    }
                }
                Ok((*a, *b))
            }
            Scope::All => {
                let last = self.latest().ok_or(QueryError::Empty)?;
                Ok((SnapshotId(0), last))
            }
            _ => Err(QueryError::ScopeMismatch {
                query: "diff",
                need: "a snapshot range (@<from>..<to> or @all)",
            }),
        }
    }
}

/// Where the planner routes one request of a batch.
enum Step {
    /// Scope resolution already failed; the error is the answer.
    Fail(QueryError),
    /// A single-snapshot lookup keyed by the prefix's shard, with its
    /// scope already resolved: the batch runner gives every shard's
    /// bucket to one worker, so each shard's tries are walked from
    /// exactly one thread.
    Sharded(usize, SnapshotId),
    /// Everything else (all-shard lookups, hash lookups, history walks,
    /// diffs): spread round-robin over the workers' general lanes.
    General,
}

fn classify(engine: &QueryEngine, req: &QueryRequest) -> Step {
    match &req.query {
        Query::Route { prefix, .. }
        | Query::SaStatus { prefix, .. }
        | Query::Rov { prefix, .. } => match engine.single_scope(&req.query, &req.scope) {
            Ok(id) => Step::Sharded(shard_of(*prefix, engine.shard_count()), id),
            Err(e) => Step::Fail(e),
        },
        _ => Step::General,
    }
}

/// Runs a batch: classify, bucket, evaluate buckets concurrently, merge.
/// One worker per non-empty bucket, capped at the machine's parallelism;
/// workers write into private vectors (interleaved writes to the shared
/// results vector would false-share) and the merge moves answers into
/// place.
pub(crate) fn run_batch(
    engine: &QueryEngine,
    reqs: &[QueryRequest],
) -> (Vec<Result<Response, QueryError>>, BatchProfile) {
    let wall_start = Instant::now();
    let n_shards = engine.shard_count();
    let mut results: Vec<Option<Result<Response, QueryError>>> =
        (0..reqs.len()).map(|_| None).collect();

    // Shard buckets carry (request index, resolved snapshot) so workers
    // evaluate without re-resolving the scope.
    let mut shard_buckets: Vec<(usize, Vec<(usize, SnapshotId)>)> =
        (0..n_shards).map(|s| (s, Vec::new())).collect();
    let mut general: Vec<usize> = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        match classify(engine, req) {
            Step::Fail(e) => results[i] = Some(Err(e)),
            Step::Sharded(shard, id) => shard_buckets[shard].1.push((i, id)),
            Step::General => general.push(i),
        }
    }
    shard_buckets.retain(|(_, b)| !b.is_empty());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // The general lane is not one unit of work: a pure-general batch
    // (all resolves or history walks) must still spread over every core,
    // so it counts as up to one lane per request.
    let workers = (shard_buckets.len() + general.len()).min(cores).max(1);
    // The general lane is over-partitioned (4 chunks per worker) so that
    // expensive history walks landing in one chunk don't serialize the
    // whole lane; workers pick up chunks round-robin.
    let general_chunks: Vec<&[usize]> = if general.is_empty() {
        Vec::new()
    } else {
        let n_chunks = (workers * 4).min(general.len());
        general.chunks(general.len().div_ceil(n_chunks)).collect()
    };

    let mut profile = BatchProfile {
        wall: Duration::ZERO,
        shard_busy: vec![Duration::ZERO; n_shards],
        general_busy: vec![Duration::ZERO; general_chunks.len()],
        threads: workers,
    };

    // A bucket is (lane, work); lanes 0..n_shards are shard buckets
    // (scopes pre-resolved), lanes ≥ n_shards are general chunks.
    enum LaneWork<'a> {
        Shard(&'a [(usize, SnapshotId)]),
        General(&'a [usize]),
    }
    let buckets: Vec<(usize, LaneWork)> = shard_buckets
        .iter()
        .map(|(s, b)| (*s, LaneWork::Shard(b.as_slice())))
        .chain(
            general_chunks
                .iter()
                .enumerate()
                .map(|(i, c)| (n_shards + i, LaneWork::General(c))),
        )
        .collect();

    type LaneAnswers = (usize, Duration, Vec<(usize, Result<Response, QueryError>)>);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let my_buckets: Vec<&(usize, LaneWork)> =
                    buckets.iter().skip(w).step_by(workers).collect();
                scope.spawn(move || {
                    let mut out: Vec<LaneAnswers> = Vec::with_capacity(my_buckets.len());
                    for (lane, work) in my_buckets {
                        let t0 = Instant::now();
                        let answers: Vec<(usize, Result<Response, QueryError>)> = match work {
                            LaneWork::Shard(bucket) => bucket
                                .iter()
                                .map(|&(i, id)| (i, engine.eval_point(&reqs[i].query, id)))
                                .collect(),
                            LaneWork::General(bucket) => bucket
                                .iter()
                                .map(|&i| (i, engine.execute(&reqs[i])))
                                .collect(),
                        };
                        out.push((*lane, t0.elapsed(), answers));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (lane, busy, answers) in h.join().expect("batch worker panicked") {
                if lane < n_shards {
                    profile.shard_busy[lane] = busy;
                    engine.metrics.plan_lane_shard_seconds.record(busy);
                } else {
                    profile.general_busy[lane - n_shards] = busy;
                    engine.metrics.plan_lane_general_seconds.record(busy);
                }
                for (i, answer) in answers {
                    results[i] = Some(answer);
                }
            }
        }
    });

    profile.wall = wall_start.elapsed();
    engine.metrics.plan_batch_seconds.record(profile.wall);
    let results = results
        .into_iter()
        .map(|r| r.expect("every request routed to a lane"))
        .collect();
    (results, profile)
}
