//! [`QueryEngine`]: the concurrently-queryable observatory.
//!
//! Ingest many snapshots, then answer policy queries in O(lookup). Single
//! queries index straight into the target shard; batched variants bucket
//! queries by shard and evaluate the buckets in parallel with
//! `std::thread::scope`, so throughput scales with the shard count.

use std::collections::HashMap;

use bgp_sim::{SimOutput, SnapshotSeries};
use bgp_types::{Asn, Ipv4Prefix, Relationship};
use bgp_wire::{TableDump, WireError};
use net_topology::AsGraph;
use rpi_core::Experiment;

use crate::diff::SnapshotDiff;
use crate::intern::WorldInterner;
use crate::snapshot::{shard_of, Snapshot, SnapshotId, VantageKind};

/// A resolved best-route answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAnswer {
    /// Snapshot the answer comes from.
    pub snapshot: SnapshotId,
    /// The vantage whose table was consulted.
    pub vantage: Asn,
    /// The table prefix that matched (equals the query prefix for exact
    /// lookups; may be shorter for longest-prefix-match resolution).
    pub prefix: Ipv4Prefix,
    /// Neighbor the best route was learned from.
    pub next_hop: Asn,
    /// AS path from the next hop to the origin.
    pub path: Vec<Asn>,
}

impl RouteAnswer {
    /// The origin AS of the matched route.
    pub fn origin(&self) -> Asn {
        *self.path.last().expect("answer paths are non-empty")
    }
}

/// The answer to `sa_status(vantage, prefix)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaStatus {
    /// The AS is not an indexed vantage of the snapshot.
    UnknownVantage,
    /// The vantage's table has no route for the prefix.
    NotInTable,
    /// The route exists but its origin is outside the vantage's customer
    /// cone — Fig. 4 does not classify it.
    NotCustomerRoute,
    /// A customer-originated prefix reached over a customer route: the
    /// customer exports it normally.
    CustomerExported {
        /// The originating customer.
        origin: Asn,
    },
    /// A selectively-announced prefix (the Fig. 4 positive).
    SelectivelyAnnounced {
        /// The originating customer.
        origin: Asn,
    },
}

/// Cached per-AS policy digest.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySummary {
    /// The AS summarized.
    pub asn: Asn,
    /// How the AS is observed, if it is a vantage.
    pub kind: Option<VantageKind>,
    /// Routes in its best table.
    pub routes: usize,
    /// Customer-originated prefixes (Fig. 4 denominator).
    pub customer_prefixes: usize,
    /// Selectively-announced prefixes seen from here.
    pub sa_count: usize,
    /// Import typicality `(compared, typical)`, LG vantages only.
    pub typicality: Option<(usize, usize)>,
    /// Neighbors with community-derived relationship classes, LG only.
    pub tagged_neighbors: usize,
    /// Oracle neighbor counts: `(providers, customers, peers, siblings)`.
    pub neighbor_counts: (usize, usize, usize, usize),
}

impl PolicySummary {
    /// SA share of customer prefixes, in percent (Table 5's column).
    pub fn sa_percent(&self) -> f64 {
        if self.customer_prefixes == 0 {
            0.0
        } else {
            100.0 * self.sa_count as f64 / self.customer_prefixes as f64
        }
    }

    /// Typicality percentage, if measured (Table 2's column).
    pub fn typicality_percent(&self) -> Option<f64> {
        self.typicality.map(|(compared, typical)| {
            if compared == 0 {
                100.0
            } else {
                100.0 * typical as f64 / compared as f64
            }
        })
    }
}

/// Shard-level timing of one batched query evaluation.
#[derive(Debug, Clone)]
pub struct BatchProfile {
    /// End-to-end batch time (bucketing + workers + merge).
    pub wall: std::time::Duration,
    /// Busy time per shard (zero for shards that saw no queries).
    pub shard_busy: Vec<std::time::Duration>,
    /// Worker threads actually spawned.
    pub threads: usize,
}

impl BatchProfile {
    /// The slowest shard — the batch's critical path with one worker per
    /// shard and enough cores.
    pub fn critical_path(&self) -> std::time::Duration {
        self.shard_busy.iter().max().copied().unwrap_or_default()
    }

    /// Total lookup work across shards.
    pub fn total_busy(&self) -> std::time::Duration {
        self.shard_busy.iter().sum()
    }

    /// How much faster the batch's lookup work runs with one core per
    /// shard than on one core: `total_busy / critical_path`. This is a
    /// property of the shard decomposition, so it is meaningful even when
    /// measured on a single-core machine.
    pub fn parallel_speedup(&self) -> f64 {
        let crit = self.critical_path().as_secs_f64();
        if crit == 0.0 {
            1.0
        } else {
            self.total_busy().as_secs_f64() / crit
        }
    }
}

/// The sharded, multi-snapshot policy observatory.
#[derive(Debug)]
pub struct QueryEngine {
    pub(crate) interner: WorldInterner,
    pub(crate) snapshots: Vec<Snapshot>,
    n_shards: usize,
}

impl QueryEngine {
    /// An empty engine with `n_shards` shards per vantage table (clamped
    /// to at least 1).
    pub fn new(n_shards: usize) -> QueryEngine {
        QueryEngine {
            interner: WorldInterner::new(),
            snapshots: Vec::new(),
            n_shards: n_shards.max(1),
        }
    }

    /// Shards per vantage table.
    pub fn shard_count(&self) -> usize {
        self.n_shards
    }

    /// Number of ingested snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Snapshot labels in ingestion order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.snapshots.iter().map(|s| s.label.as_str())
    }

    /// The most recently ingested snapshot (the default query target).
    pub fn latest(&self) -> Option<SnapshotId> {
        let n = self.snapshots.len();
        (n > 0).then(|| SnapshotId((n - 1) as u32))
    }

    /// `(distinct ASNs, distinct prefixes, distinct communities)` interned.
    pub fn interned_sizes(&self) -> (usize, usize, usize) {
        self.interner.sizes()
    }

    /// Ingests one simulated output with an explicit relationship oracle
    /// (typically the Gao-inferred graph, as the paper's analyses use).
    pub fn ingest_output(&mut self, out: &SimOutput, oracle: &AsGraph, label: &str) -> SnapshotId {
        let id = SnapshotId(self.snapshots.len() as u32);
        let snap = Snapshot::from_output(id, label, out, oracle, &mut self.interner, self.n_shards);
        self.snapshots.push(snap);
        id
    }

    /// Ingests an experiment's output using its inferred graph as oracle.
    pub fn ingest_experiment(&mut self, exp: &Experiment, label: &str) -> SnapshotId {
        self.ingest_output(&exp.output, &exp.inferred_graph, label)
    }

    /// Ingests every snapshot of a churn series under one oracle.
    pub fn ingest_series(&mut self, series: &SnapshotSeries, oracle: &AsGraph) -> Vec<SnapshotId> {
        series
            .labels
            .iter()
            .zip(&series.snapshots)
            .map(|(label, out)| self.ingest_output(out, oracle, label))
            .collect()
    }

    /// Ingests an MRT TABLE_DUMP_V2 file image: decodes it, rebuilds the
    /// collector view, Gao-infers a relationship oracle from the dump's
    /// own paths, and indexes every peer as a vantage.
    pub fn ingest_mrt_bytes(&mut self, data: &[u8], label: &str) -> Result<SnapshotId, WireError> {
        let dump = TableDump::decode(bytes::Bytes::from(data.to_vec()))?;
        let view = bgp_sim::export::mrt_to_collector(&dump)?;
        let paths: Vec<&[Asn]> = view.all_paths().map(|r| r.path.as_slice()).collect();
        let inferred = as_relationships::infer(
            paths.iter().copied(),
            &as_relationships::InferenceParams::default(),
        );
        let oracle = inferred.to_graph();
        let id = SnapshotId(self.snapshots.len() as u32);
        let snap =
            Snapshot::from_collector(id, label, &view, &oracle, &mut self.interner, self.n_shards);
        self.snapshots.push(snap);
        Ok(id)
    }

    fn snapshot(&self, id: SnapshotId) -> Option<&Snapshot> {
        self.snapshots.get(id.index())
    }

    /// The vantages of the latest snapshot, ascending by ASN.
    pub fn vantages(&self) -> Vec<(Asn, VantageKind)> {
        self.latest()
            .map_or_else(Vec::new, |id| self.vantages_in(id))
    }

    /// The vantages of a specific snapshot, ascending by ASN.
    pub fn vantages_in(&self, id: SnapshotId) -> Vec<(Asn, VantageKind)> {
        let Some(snap) = self.snapshot(id) else {
            return Vec::new();
        };
        let mut out: Vec<(Asn, VantageKind)> = snap
            .vantage_syms()
            .map(|(s, k)| (self.interner.resolve_asn(s), k))
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    // ---------- single queries ----------

    /// Exact best-route lookup in the latest snapshot.
    pub fn route_at(&self, vantage: Asn, prefix: Ipv4Prefix) -> Option<RouteAnswer> {
        self.route_at_in(self.latest()?, vantage, prefix)
    }

    /// Exact best-route lookup in a specific snapshot.
    pub fn route_at_in(
        &self,
        id: SnapshotId,
        vantage: Asn,
        prefix: Ipv4Prefix,
    ) -> Option<RouteAnswer> {
        let snap = self.snapshot(id)?;
        let v = self.interner.lookup_asn(vantage)?;
        let route = snap.route(v, prefix)?;
        Some(self.answer(id, vantage, prefix, route))
    }

    /// Longest-prefix-match lookup in the latest snapshot: how would the
    /// vantage route traffic for this (possibly more-specific) prefix?
    pub fn resolve(&self, vantage: Asn, prefix: Ipv4Prefix) -> Option<RouteAnswer> {
        self.resolve_in(self.latest()?, vantage, prefix)
    }

    /// Longest-prefix-match lookup in a specific snapshot. Consults every
    /// shard (covering prefixes hash independently) and keeps the longest.
    pub fn resolve_in(
        &self,
        id: SnapshotId,
        vantage: Asn,
        prefix: Ipv4Prefix,
    ) -> Option<RouteAnswer> {
        let snap = self.snapshot(id)?;
        let v = self.interner.lookup_asn(vantage)?;
        let (matched, route) = snap.route_lpm(v, prefix)?;
        Some(self.answer(id, vantage, matched, route))
    }

    /// Fig. 4 status of a prefix as seen from a vantage, latest snapshot.
    pub fn sa_status(&self, vantage: Asn, prefix: Ipv4Prefix) -> SaStatus {
        match self.latest() {
            Some(id) => self.sa_status_in(id, vantage, prefix),
            None => SaStatus::UnknownVantage,
        }
    }

    /// Fig. 4 status of a prefix as seen from a vantage.
    pub fn sa_status_in(&self, id: SnapshotId, vantage: Asn, prefix: Ipv4Prefix) -> SaStatus {
        let Some(snap) = self.snapshot(id) else {
            return SaStatus::UnknownVantage;
        };
        let Some(v) = self.interner.lookup_asn(vantage) else {
            return SaStatus::UnknownVantage;
        };
        let Some(cache) = snap.sa.get(&v) else {
            return SaStatus::UnknownVantage;
        };
        let Some(p) = self.interner.lookup_prefix(prefix) else {
            return SaStatus::NotInTable;
        };
        if let Some(&origin) = cache.sa.get(&p) {
            return SaStatus::SelectivelyAnnounced {
                origin: self.interner.resolve_asn(origin),
            };
        }
        if let Some(&origin) = cache.exported.get(&p) {
            return SaStatus::CustomerExported {
                origin: self.interner.resolve_asn(origin),
            };
        }
        if snap.route(v, prefix).is_some() {
            SaStatus::NotCustomerRoute
        } else {
            SaStatus::NotInTable
        }
    }

    /// The oracle relationship `b is a's …` in the latest snapshot.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        self.relationship_in(self.latest()?, a, b)
    }

    /// The oracle relationship `b is a's …` in a specific snapshot.
    pub fn relationship_in(&self, id: SnapshotId, a: Asn, b: Asn) -> Option<Relationship> {
        let snap = self.snapshot(id)?;
        let sa = self.interner.lookup_asn(a)?;
        let sb = self.interner.lookup_asn(b)?;
        snap.relationships.get(&(sa, sb)).copied()
    }

    /// Per-AS policy digest from the latest snapshot.
    pub fn policy_summary(&self, asn: Asn) -> Option<PolicySummary> {
        self.policy_summary_in(self.latest()?, asn)
    }

    /// Per-AS policy digest from a specific snapshot. `None` only when the
    /// snapshot id is invalid or the AS was never seen at ingest time.
    pub fn policy_summary_in(&self, id: SnapshotId, asn: Asn) -> Option<PolicySummary> {
        let snap = self.snapshot(id)?;
        let s = self.interner.lookup_asn(asn)?;
        let table = snap.vantages.get(&s);
        let cache = snap.sa.get(&s);

        let neighbor_counts = snap.neighbor_counts.get(&s).copied().unwrap_or_default();

        Some(PolicySummary {
            asn,
            kind: table.map(|t| t.kind),
            routes: table.map_or(0, |t| t.route_count),
            customer_prefixes: cache.map_or(0, |c| c.customer_prefixes),
            sa_count: cache.map_or(0, |c| c.sa.len()),
            typicality: snap.typicality.get(&s).copied(),
            tagged_neighbors: snap.community_class.get(&s).map_or(0, HashMap::len),
            neighbor_counts,
        })
    }

    // ---------- batched queries (parallel over shards) ----------

    /// Batched exact route lookups against the latest snapshot.
    pub fn route_at_batch(&self, queries: &[(Asn, Ipv4Prefix)]) -> Vec<Option<RouteAnswer>> {
        match self.latest() {
            Some(id) => self.route_at_batch_in(id, queries),
            None => vec![None; queries.len()],
        }
    }

    /// Batched exact route lookups. Queries are bucketed by target shard
    /// and the buckets evaluated concurrently under `std::thread::scope`
    /// (one worker per shard, capped at the machine's parallelism), so a
    /// batch touches each shard's tries from exactly one thread.
    pub fn route_at_batch_in(
        &self,
        id: SnapshotId,
        queries: &[(Asn, Ipv4Prefix)],
    ) -> Vec<Option<RouteAnswer>> {
        self.route_at_batch_profiled(id, queries).0
    }

    /// [`Self::route_at_batch_in`] plus shard-level timing: how long each
    /// shard's bucket took, from which the batch's critical path (and so
    /// the speedup available from parallel shards) follows.
    pub fn route_at_batch_profiled(
        &self,
        id: SnapshotId,
        queries: &[(Asn, Ipv4Prefix)],
    ) -> (Vec<Option<RouteAnswer>>, BatchProfile) {
        let wall_start = std::time::Instant::now();
        let mut results: Vec<Option<RouteAnswer>> = vec![None; queries.len()];
        let mut profile = BatchProfile {
            wall: std::time::Duration::ZERO,
            shard_busy: vec![std::time::Duration::ZERO; self.n_shards],
            threads: 0,
        };
        let Some(snap) = self.snapshot(id) else {
            return (results, profile);
        };

        let mut buckets: Vec<(usize, Vec<usize>)> =
            (0..self.n_shards).map(|s| (s, Vec::new())).collect();
        for (i, &(_, prefix)) in queries.iter().enumerate() {
            buckets[shard_of(prefix, self.n_shards)].1.push(i);
        }
        buckets.retain(|(_, b)| !b.is_empty());

        // One worker per shard, capped at the core count (on a small
        // machine each worker walks several buckets in turn). Workers
        // produce answers in private vectors — writing interleaved cells
        // of `results` directly would false-share across threads — and
        // the merge afterwards moves them into place.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = buckets.len().min(cores).max(1);
        profile.threads = workers;
        type ShardAnswers = (
            usize,
            std::time::Duration,
            Vec<(usize, Option<RouteAnswer>)>,
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let my_buckets: Vec<&(usize, Vec<usize>)> =
                        buckets.iter().skip(w).step_by(workers).collect();
                    scope.spawn(move || {
                        let mut out: Vec<ShardAnswers> = Vec::with_capacity(my_buckets.len());
                        for (shard, bucket) in my_buckets {
                            let t0 = std::time::Instant::now();
                            let answers: Vec<(usize, Option<RouteAnswer>)> = bucket
                                .iter()
                                .map(|&i| {
                                    let (vantage, prefix) = queries[i];
                                    let answer = self
                                        .interner
                                        .lookup_asn(vantage)
                                        .and_then(|v| snap.route(v, prefix))
                                        .map(|route| self.answer(id, vantage, prefix, route));
                                    (i, answer)
                                })
                                .collect();
                            out.push((*shard, t0.elapsed(), answers));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (shard, busy, answers) in h.join().expect("route_at_batch worker panicked") {
                    profile.shard_busy[shard] = busy;
                    for (i, answer) in answers {
                        results[i] = answer;
                    }
                }
            }
        });
        profile.wall = wall_start.elapsed();
        (results, profile)
    }

    /// Batched Fig. 4 statuses against the latest snapshot, evaluated in
    /// parallel chunks (SA caches are hash maps, not sharded tries).
    pub fn sa_status_batch(&self, queries: &[(Asn, Ipv4Prefix)]) -> Vec<SaStatus> {
        let Some(id) = self.latest() else {
            return vec![SaStatus::UnknownVantage; queries.len()];
        };
        let chunk = queries.len().div_ceil(self.n_shards).max(1);
        let mut results: Vec<SaStatus> = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|&(v, p)| self.sa_status_in(id, v, p))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("sa_status worker panicked"));
            }
        });
        results
    }

    // ---------- diffing ----------

    /// What changed between two snapshots. `None` on an invalid id.
    pub fn diff(&self, from: SnapshotId, to: SnapshotId) -> Option<SnapshotDiff> {
        let a = self.snapshot(from)?;
        let b = self.snapshot(to)?;
        Some(SnapshotDiff::between(&self.interner, a, b))
    }

    fn answer(
        &self,
        id: SnapshotId,
        vantage: Asn,
        prefix: Ipv4Prefix,
        route: &crate::snapshot::CompactRoute,
    ) -> RouteAnswer {
        RouteAnswer {
            snapshot: id,
            vantage,
            prefix,
            next_hop: self.interner.resolve_asn(route.next_hop),
            path: route
                .path
                .iter()
                .map(|&s| self.interner.resolve_asn(s))
                .collect(),
        }
    }
}
