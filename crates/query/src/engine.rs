//! [`QueryEngine`]: the concurrently-queryable observatory.
//!
//! Ingest many snapshots, then answer policy queries in O(lookup). The
//! engine's one entry point is the typed protocol of [`crate::proto`]:
//! [`QueryEngine::execute`] runs a [`QueryRequest`] (a [`Query`] plus a
//! snapshot [`Scope`]); [`QueryEngine::execute_batch`] runs many,
//! bucketed by shard and evaluated in parallel with `std::thread::scope`
//! (see [`crate::plan`]). The legacy per-question methods (`route_at`,
//! `sa_status_in`, `route_at_batch`, …) survive as thin wrappers that
//! build a request and delegate.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bgp_sim::{output_delta, SimOutput, SnapshotSeries};
use bgp_types::{Asn, CowTrie, Ipv4Prefix, Relationship};
use bgp_wire::{TableDump, WireError};
use net_topology::{AsGraph, CustomerCone};
use rpi_core::persistence::{classify_persistence, histogram_from_counts};
use rpi_core::Experiment;
use rpi_sec::{RoaTable, RovCache, RovCacheStats};

use crate::diff::SnapshotDiff;
use crate::intern::WorldInterner;
use crate::plan::QueryError;
use crate::proto::{
    PersistenceAnswer, Query, QueryRequest, Response, SaHistoryPoint, SaOriginCount, Scope,
};
use crate::snapshot::{Snapshot, SnapshotId, VantageKind};

/// A resolved best-route answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAnswer {
    /// Snapshot the answer comes from.
    pub snapshot: SnapshotId,
    /// The vantage whose table was consulted.
    pub vantage: Asn,
    /// The table prefix that matched (equals the query prefix for exact
    /// lookups; may be shorter for longest-prefix-match resolution).
    pub prefix: Ipv4Prefix,
    /// Neighbor the best route was learned from.
    pub next_hop: Asn,
    /// AS path from the next hop to the origin.
    pub path: Vec<Asn>,
}

impl RouteAnswer {
    /// The origin AS of the matched route.
    pub fn origin(&self) -> Asn {
        *self.path.last().expect("answer paths are non-empty")
    }
}

/// The answer to `sa_status(vantage, prefix)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaStatus {
    /// The AS is not an indexed vantage of the snapshot.
    UnknownVantage,
    /// The vantage's table has no route for the prefix.
    NotInTable,
    /// The route exists but its origin is outside the vantage's customer
    /// cone — Fig. 4 does not classify it.
    NotCustomerRoute,
    /// A customer-originated prefix reached over a customer route: the
    /// customer exports it normally.
    CustomerExported {
        /// The originating customer.
        origin: Asn,
    },
    /// A selectively-announced prefix (the Fig. 4 positive).
    SelectivelyAnnounced {
        /// The originating customer.
        origin: Asn,
    },
}

/// Cached per-AS policy digest.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySummary {
    /// The AS summarized.
    pub asn: Asn,
    /// How the AS is observed, if it is a vantage.
    pub kind: Option<VantageKind>,
    /// Routes in its best table.
    pub routes: usize,
    /// Customer-originated prefixes (Fig. 4 denominator).
    pub customer_prefixes: usize,
    /// Selectively-announced prefixes seen from here.
    pub sa_count: usize,
    /// Import typicality `(compared, typical)`, LG vantages only.
    pub typicality: Option<(usize, usize)>,
    /// Neighbors with community-derived relationship classes, LG only.
    pub tagged_neighbors: usize,
    /// Oracle neighbor counts: `(providers, customers, peers, siblings)`.
    pub neighbor_counts: (usize, usize, usize, usize),
}

impl PolicySummary {
    /// SA share of customer prefixes, in percent (Table 5's column).
    pub fn sa_percent(&self) -> f64 {
        if self.customer_prefixes == 0 {
            0.0
        } else {
            100.0 * self.sa_count as f64 / self.customer_prefixes as f64
        }
    }

    /// Typicality percentage, if measured (Table 2's column).
    pub fn typicality_percent(&self) -> Option<f64> {
        self.typicality.map(|(compared, typical)| {
            if compared == 0 {
                100.0
            } else {
                100.0 * typical as f64 / compared as f64
            }
        })
    }
}

/// Lane-level timing of one batched query evaluation: per-shard busy
/// time for the shard-bucketed point lookups, per-chunk busy time for
/// the general lane (history walks, resolves, summaries, diffs).
#[derive(Debug, Clone)]
pub struct BatchProfile {
    /// End-to-end batch time (planning + workers + merge).
    pub wall: std::time::Duration,
    /// Busy time per shard (zero for shards that saw no queries).
    pub shard_busy: Vec<std::time::Duration>,
    /// Busy time per general-lane chunk (empty when the batch was
    /// entirely shardable).
    pub general_busy: Vec<std::time::Duration>,
    /// Worker threads actually spawned.
    pub threads: usize,
}

impl BatchProfile {
    /// The slowest lane — the batch's critical path with one worker per
    /// lane and enough cores.
    pub fn critical_path(&self) -> std::time::Duration {
        self.shard_busy
            .iter()
            .chain(self.general_busy.iter())
            .max()
            .copied()
            .unwrap_or_default()
    }

    /// Total lookup work across all lanes.
    pub fn total_busy(&self) -> std::time::Duration {
        self.shard_busy.iter().chain(self.general_busy.iter()).sum()
    }

    /// How much faster the batch's lookup work runs with one core per
    /// lane than on one core: `total_busy / critical_path`. This is a
    /// property of the shard decomposition, so it is meaningful even when
    /// measured on a single-core machine.
    pub fn parallel_speedup(&self) -> f64 {
        let crit = self.critical_path().as_secs_f64();
        if crit == 0.0 {
            1.0
        } else {
            self.total_busy().as_secs_f64() / crit
        }
    }
}

/// How much of a series' trie structure is physically shared between
/// consecutive snapshots (the copy-on-write ingest's savings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Snapshots inspected.
    pub snapshots: usize,
    /// Total trie nodes across all snapshots, counted as if unshared.
    pub total_nodes: usize,
    /// Nodes pointer-shared with the predecessor snapshot (0 for the
    /// first snapshot and for from-scratch ingests).
    pub shared_nodes: usize,
    /// Heap footprint of all trie nodes counted as if unshared, in bytes
    /// (`total_nodes × node size`); `total_bytes - shared_bytes` is the
    /// physical in-memory trie footprint.
    pub total_bytes: usize,
    /// The shared nodes' heap footprint, in bytes.
    pub shared_bytes: usize,
    /// Total archive size on disk (manifest segments, symbols included)
    /// when the engine was loaded from or saved to an archive; 0 for a
    /// purely in-memory engine.
    pub disk_bytes: usize,
}

impl SharingStats {
    /// `shared_nodes / total_nodes` (0.0 on an empty engine).
    pub fn shared_ratio(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            self.shared_nodes as f64 / self.total_nodes as f64
        }
    }
}

/// The timed full-vs-incremental series-ingest comparison behind
/// `rpi-queryd --bench` and the `query/ingest_series` bench target —
/// one implementation so the two reports can't drift.
#[derive(Debug, Clone, Copy)]
pub struct SeriesIngestReport {
    /// Best wall-clock of the from-scratch ingests.
    pub full: std::time::Duration,
    /// Best wall-clock of the incremental (COW-overlay) ingests.
    pub incremental: std::time::Duration,
    /// Sharing achieved by the incremental engine.
    pub stats: SharingStats,
}

impl SeriesIngestReport {
    /// `full / incremental`.
    pub fn speedup(&self) -> f64 {
        self.full.as_secs_f64() / self.incremental.as_secs_f64()
    }
}

/// Ingests `series` once per run through each path (best of `runs`, so
/// a cold first run's allocator warmup doesn't read as ingest cost) and
/// reports the wall-clock pair plus the incremental engine's
/// [`SharingStats`].
pub fn measure_series_ingest(
    series: &SnapshotSeries,
    oracle: &AsGraph,
    n_shards: usize,
    runs: usize,
) -> SeriesIngestReport {
    let best_of = |f: &mut dyn FnMut()| {
        (0..runs.max(1))
            .map(|_| {
                let t0 = std::time::Instant::now();
                f();
                t0.elapsed()
            })
            .min()
            .expect("at least one run")
    };
    let full = best_of(&mut || {
        let mut e = QueryEngine::new(n_shards);
        e.ingest_series(series, oracle);
    });
    let incremental = best_of(&mut || {
        let mut e = QueryEngine::new(n_shards);
        e.ingest_series_incremental(series, oracle);
    });
    let mut engine = QueryEngine::new(n_shards);
    engine.ingest_series_incremental(series, oracle);
    SeriesIngestReport {
        full,
        incremental,
        stats: engine.sharing_stats(),
    }
}

/// The sharded, multi-snapshot policy observatory.
///
/// The engine is ingest-then-serve: all `&mut self` methods happen
/// before serving starts, after which every query path is `&self` — so
/// a built engine is shared across threads (and across the TCP accept
/// loop of [`crate::serve`]) behind a plain `Arc<QueryEngine>`, with
/// [`Self::execute_batch`] as the batch entry point for pre-parsed
/// requests. The assertion below keeps that property load-bearing: a
/// future `Cell`/`Rc` in any snapshot structure becomes a compile error
/// here, not a surprise in the serving layer.
#[derive(Debug)]
pub struct QueryEngine {
    pub(crate) interner: WorldInterner,
    pub(crate) snapshots: Vec<Arc<Snapshot>>,
    pub(crate) n_shards: usize,
    /// Customer cones cached for the incremental SA patcher; valid as
    /// long as the ingest oracle's relationships are unchanged (the
    /// incremental path clears it when they move).
    pub(crate) cones: HashMap<Asn, CustomerCone>,
    /// Set when the engine was loaded from (or saved to) an on-disk
    /// archive: where it lives and what each snapshot costs on disk.
    pub(crate) archive: Option<crate::archive::ArchiveInfo>,
    /// The ROA table `rov` queries validate against (empty by default:
    /// every route validates `unknown`). Engine-wide, not per snapshot —
    /// ROAs come from the registry side of the world, not from ingest.
    pub(crate) roas: Arc<RoaTable>,
    /// Bounded (prefix, origin) → verdict cache over `roas`. Behind an
    /// `Arc` so live epochs share one cache (and its hit counters)
    /// across publications.
    pub(crate) rov_cache: Arc<RovCache>,
    /// The unified metrics surface ([`crate::metrics`]): per-verb query
    /// counters and latency histograms, per-stage span histograms, tier
    /// and live gauges — including the executed-security-query counts.
    /// Shared across live epochs the same way the ROV cache is, so
    /// counts survive epoch swaps.
    pub(crate) metrics: Arc<crate::metrics::QueryMetrics>,
    /// Set when the engine is **tier-attached**: segments stay memory-
    /// mapped on disk and snapshots hydrate on demand into a bounded hot
    /// set. `snapshots` is empty in that mode — every snapshot handle
    /// comes through [`Self::snap_arc`]. Behind an `Arc` because a live
    /// writer appends to the tier while published epochs read it.
    pub(crate) tier: Option<Arc<crate::tier::Tier>>,
    /// Set on **live epoch** engines ([`crate::live`]): the number of
    /// snapshots this epoch exposes. The shared tier keeps growing after
    /// publication; the horizon pins every scope resolution — and so
    /// every query — to the world as of this epoch, so a reader holding
    /// the epoch never observes a half-published snapshot.
    pub(crate) horizon: Option<u32>,
}

// `Arc<QueryEngine>` sharing across the serve loop and batch workers
// rests on this; see the struct docs.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>()
};

impl QueryEngine {
    /// An empty engine with `n_shards` shards per vantage table (clamped
    /// to at least 1).
    pub fn new(n_shards: usize) -> QueryEngine {
        QueryEngine {
            interner: WorldInterner::new(),
            snapshots: Vec::new(),
            n_shards: n_shards.max(1),
            cones: HashMap::new(),
            archive: None,
            roas: Arc::new(RoaTable::default()),
            rov_cache: Arc::new(RovCache::default()),
            metrics: Arc::new(crate::metrics::QueryMetrics::new()),
            tier: None,
            horizon: None,
        }
    }

    /// Replaces the engine's ROA table (what `--roas` and scenario
    /// setups call), emptying the validation cache — every cached
    /// verdict was computed against the old table.
    pub fn set_roas(&mut self, table: RoaTable) {
        self.roas = Arc::new(table);
        self.rov_cache.reset();
    }

    /// The ROA table `rov` queries validate against.
    pub fn roa_table(&self) -> &RoaTable {
        &self.roas
    }

    /// The ROV cache's hit/miss counters.
    pub fn rov_cache_stats(&self) -> RovCacheStats {
        self.rov_cache.stats()
    }

    /// Executed security-query counts `(rov, hijacks, leaks)` — a view
    /// over the `rpi_sec_queries_total` registry counters.
    pub fn sec_query_counts(&self) -> (u64, u64, u64) {
        (
            self.metrics.sec_rov_total.get(),
            self.metrics.sec_hijacks_total.get(),
            self.metrics.sec_leaks_total.get(),
        )
    }

    /// The engine's metrics surface (shared with live epochs, the tier
    /// and every server on this engine).
    pub fn metrics(&self) -> &crate::metrics::QueryMetrics {
        &self.metrics
    }

    /// The shared metrics handle (for emitter threads that outlive one
    /// epoch's engine).
    pub fn metrics_arc(&self) -> Arc<crate::metrics::QueryMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Mirrors externally-owned and derived values into the registry —
    /// ROA count, ROV cache hits/misses and hit ratio, tier residency,
    /// epoch age. Call before rendering an exposition or capturing an
    /// interval snapshot; recording paths never need it.
    pub fn sync_obs(&self) {
        let m = &self.metrics;
        m.sec_roas.set_u64(self.roas.len() as u64);
        let cache = self.rov_cache.stats();
        m.sec_rov_cache_hits_total.set(cache.hits);
        m.sec_rov_cache_misses_total.set(cache.misses);
        let looked = cache.hits + cache.misses;
        m.sec_rov_cache_hit_ratio.set(if looked == 0 {
            0.0
        } else {
            cache.hits as f64 / looked as f64
        });
        if let Some(tier) = &self.tier {
            let stats = tier.stats(self.horizon.map(|h| h as usize));
            m.tier_hot_snapshots.set_u64(stats.hot as u64);
            m.tier_total_snapshots.set_u64(stats.snapshots as u64);
        }
        m.live_epoch_age_seconds.set(m.epoch_age_secs());
    }

    /// Shards per vantage table.
    pub fn shard_count(&self) -> usize {
        self.n_shards
    }

    /// Number of ingested snapshots (in tiered mode: archived snapshots,
    /// resident or not; on a live epoch: published as of this epoch).
    pub fn snapshot_count(&self) -> usize {
        let n = match &self.tier {
            Some(t) => t.len(),
            None => self.snapshots.len(),
        };
        match self.horizon {
            Some(h) => n.min(h as usize),
            None => n,
        }
    }

    /// Snapshot labels in ingestion order.
    pub fn labels(&self) -> Vec<String> {
        let n = self.snapshot_count();
        let mut labels = match &self.tier {
            Some(t) => t.labels(n),
            None => self
                .snapshots
                .iter()
                .map(|s| s.label.clone())
                .collect::<Vec<_>>(),
        };
        labels.truncate(n);
        labels
    }

    /// The most recently ingested snapshot (the default query target).
    pub fn latest(&self) -> Option<SnapshotId> {
        let n = self.snapshot_count();
        (n > 0).then(|| SnapshotId((n - 1) as u32))
    }

    /// The snapshot carrying `label`, if any (first match wins; on a
    /// live epoch, only snapshots published as of this epoch match).
    pub fn find_label(&self, label: &str) -> Option<SnapshotId> {
        let id = match &self.tier {
            Some(t) => t.find_label(label),
            None => self
                .snapshots
                .iter()
                .position(|s| s.label == label)
                .map(|i| SnapshotId(i as u32)),
        }?;
        (id.index() < self.snapshot_count()).then_some(id)
    }

    /// `(distinct ASNs, distinct prefixes, distinct communities)` interned.
    pub fn interned_sizes(&self) -> (usize, usize, usize) {
        self.interner.sizes()
    }

    /// Ingests one simulated output with an explicit relationship oracle
    /// (typically the Gao-inferred graph, as the paper's analyses use).
    pub fn ingest_output(&mut self, out: &SimOutput, oracle: &AsGraph, label: &str) -> SnapshotId {
        // A from-scratch ingest may establish a new oracle baseline
        // without the incremental path's relationship comparison ever
        // seeing the switch, so the cone cache is no longer known-valid.
        // Later incremental snapshots rebuild the cones they need.
        self.cones.clear();
        let id = SnapshotId(self.snapshots.len() as u32);
        let mut snap =
            Snapshot::from_output(id, label, out, oracle, &mut self.interner, self.n_shards);
        snap.interned_watermark = self.interner.sizes();
        self.snapshots.push(Arc::new(snap));
        id
    }

    /// Ingests an experiment's output using its inferred graph as oracle.
    pub fn ingest_experiment(&mut self, exp: &Experiment, label: &str) -> SnapshotId {
        self.ingest_output(&exp.output, &exp.inferred_graph, label)
    }

    /// Ingests every snapshot of a churn series under one oracle,
    /// indexing each from scratch. See
    /// [`Self::ingest_series_incremental`] for the diff-aware
    /// alternative that shares unchanged structure between consecutive
    /// snapshots.
    pub fn ingest_series(&mut self, series: &SnapshotSeries, oracle: &AsGraph) -> Vec<SnapshotId> {
        series
            .labels
            .iter()
            .zip(&series.snapshots)
            .map(|(label, out)| self.ingest_output(out, oracle, label))
            .collect()
    }

    /// Ingests a churn series diff-aware: the first snapshot is indexed
    /// from scratch, every later one as a copy-on-write overlay over its
    /// predecessor that shares unchanged shard subtries, SA/summary
    /// caches and the (append-only) interner. Queries cannot tell the
    /// difference — the differential fuzz suite
    /// (`crates/query/tests/incremental_diff.rs`) holds both paths to
    /// byte-identical rendered responses — but at BGP-realistic churn
    /// rates this ingests a multi-snapshot archive several times faster
    /// and with most trie memory shared (see [`Self::sharing_stats`]).
    ///
    /// ```
    /// use bgp_sim::churn::simulate_series;
    /// use bgp_sim::ChurnConfig;
    /// use net_topology::InternetSize;
    /// use rpi_core::Experiment;
    /// use rpi_query::QueryEngine;
    ///
    /// let exp = Experiment::standard(InternetSize::Tiny, 7);
    /// let cfg = ChurnConfig { steps: 3, ..ChurnConfig::daily(7) };
    /// let series = simulate_series(&exp.graph, &exp.truth, &exp.spec, &cfg);
    ///
    /// let mut engine = QueryEngine::new(4);
    /// let ids = engine.ingest_series_incremental(&series, &exp.inferred_graph);
    /// assert_eq!(ids.len(), 3);
    /// // Consecutive snapshots physically share unchanged trie nodes:
    /// let stats = engine.sharing_stats();
    /// assert!(stats.shared_nodes > 0);
    /// ```
    pub fn ingest_series_incremental(
        &mut self,
        series: &SnapshotSeries,
        oracle: &AsGraph,
    ) -> Vec<SnapshotId> {
        let mut ids = Vec::with_capacity(series.snapshots.len());
        let mut prev: Option<&SimOutput> = None;
        for (label, out) in series.labels.iter().zip(&series.snapshots) {
            let id = match prev {
                None => self.ingest_output(out, oracle, label),
                // One `&AsGraph` held across the loop: the oracle is
                // provably the predecessor's, so the per-snapshot
                // relationship re-index and comparison can be skipped.
                Some(p) => self.ingest_incremental_inner(p, out, oracle, true, label),
            };
            ids.push(id);
            prev = Some(out);
        }
        ids
    }

    /// Ingests `out` as a copy-on-write overlay over the latest
    /// snapshot. `prev_out` must be the output the latest snapshot was
    /// built from (the structured delta is computed between the two);
    /// the oracle may differ from the predecessor's — relationship flips
    /// are detected and the affected caches rebuilt. On an empty engine
    /// this falls back to a from-scratch ingest.
    pub fn ingest_output_incremental(
        &mut self,
        prev_out: &SimOutput,
        out: &SimOutput,
        oracle: &AsGraph,
        label: &str,
    ) -> SnapshotId {
        self.ingest_incremental_inner(prev_out, out, oracle, false, label)
    }

    /// `same_oracle` is set only by [`Self::ingest_series_incremental`],
    /// which holds one oracle reference across the whole loop and can
    /// therefore skip re-indexing relationships per snapshot.
    fn ingest_incremental_inner(
        &mut self,
        prev_out: &SimOutput,
        out: &SimOutput,
        oracle: &AsGraph,
        same_oracle: bool,
        label: &str,
    ) -> SnapshotId {
        let Some(prev_id) = self.latest() else {
            return self.ingest_output(out, oracle, label);
        };
        let delta = output_delta(prev_out, out);
        let id = SnapshotId(self.snapshots.len() as u32);
        let sizes_before = self.interner.sizes();
        let prev = Arc::clone(&self.snapshots[prev_id.index()]);
        let mut snap = Snapshot::from_output_incremental(
            id,
            label,
            &prev,
            &delta,
            out,
            oracle,
            same_oracle,
            &mut self.interner,
            &mut self.cones,
            self.n_shards,
        );
        // The interner is append-only across a series: symbols may be
        // added, never moved or dropped, so the predecessor's interned
        // routes stay valid.
        debug_assert!({
            let after = self.interner.sizes();
            after.0 >= sizes_before.0 && after.1 >= sizes_before.1 && after.2 >= sizes_before.2
        });
        snap.interned_watermark = self.interner.sizes();
        // Keep the events: they are the snapshot's compact archive form
        // (`save_archive` persists them as a delta segment when the
        // replay-eligibility policy allows).
        snap.provenance = crate::snapshot::Provenance::Delta(std::sync::Arc::new(delta));
        self.snapshots.push(Arc::new(snap));
        id
    }

    /// How much trie structure consecutive snapshots physically share —
    /// nonzero only for snapshots built by the incremental ingest path.
    pub fn sharing_stats(&self) -> SharingStats {
        let mut stats = SharingStats {
            snapshots: self.snapshots.len(),
            ..Default::default()
        };
        for (i, snap) in self.snapshots.iter().enumerate() {
            stats.total_nodes += snap.trie_nodes();
            if i > 0 {
                stats.shared_nodes += snap.trie_nodes_shared_with(&self.snapshots[i - 1]);
            }
        }
        let node_size = CowTrie::<crate::snapshot::CompactRoute>::node_size();
        stats.total_bytes = stats.total_nodes * node_size;
        stats.shared_bytes = stats.shared_nodes * node_size;
        stats.disk_bytes = self.archive.as_ref().map_or(0, |a| a.total_bytes());
        stats
    }

    // ---------- the on-disk archive (rpi-store) ----------

    /// Serializes the engine's whole world — symbol tables, every
    /// snapshot's tries and caches — into an `rpi-store` archive at
    /// `dir`, refusing to overwrite an existing archive unless `force`.
    /// Snapshots that were ingested incrementally and are cleanly
    /// replayable are written as compact **delta segments**; everything
    /// else is a **full segment**. Returns the written manifest.
    pub fn save_archive(
        &mut self,
        dir: &std::path::Path,
        force: bool,
    ) -> Result<rpi_store::Manifest, rpi_store::StoreError> {
        self.save_archive_with(dir, force, crate::archive::SaveOptions::default())
    }

    /// [`Self::save_archive`] with an explicit keyframe policy (what
    /// `rpi-queryd --keyframe-every` passes through). Tier-attached
    /// engines cannot save — they don't hold the world in memory; load
    /// fully hydrated first.
    pub fn save_archive_with(
        &mut self,
        dir: &std::path::Path,
        force: bool,
        options: crate::archive::SaveOptions,
    ) -> Result<rpi_store::Manifest, rpi_store::StoreError> {
        if self.tier.is_some() {
            return Err(rpi_store::StoreError::Unsupported {
                what: "saving a tier-attached engine (load it fully hydrated first)".to_string(),
            });
        }
        crate::archive::save(self, dir, force, options)
    }

    /// Cold-starts an engine from an archive written by
    /// [`Self::save_archive`]: loads the symbol tables, decodes full
    /// segments, and replays delta segments through the incremental
    /// ingest machinery (so physical trie sharing survives the round
    /// trip). Never returns a partially-loaded engine: any truncated,
    /// checksum-failing or structurally corrupt segment fails the whole
    /// load with the segment index and byte offset.
    pub fn load_archive(dir: &std::path::Path) -> Result<QueryEngine, rpi_store::StoreError> {
        crate::archive::load(dir)
    }

    /// Attaches to an archive in **tiered** mode: full segments are
    /// memory-mapped, not decoded — a per-snapshot attach costs
    /// microseconds — and exact `route`/`resolve`/`rov` point queries
    /// against cold snapshots are answered zero-copy off the mapping.
    /// Anything deeper hydrates the snapshot (replaying its delta chain
    /// from the nearest keyframe) into a hot set bounded by `hot_cap`
    /// (clamped to ≥ 1, least-recently-used eviction).
    ///
    /// Archives written before the vantage directory existed (manifest
    /// format v1) cannot be mapped; they fall back to a fully hydrated
    /// [`Self::load_archive`] — [`Self::tier_stats`] is `None` then.
    pub fn load_archive_tiered(
        dir: &std::path::Path,
        hot_cap: usize,
    ) -> Result<QueryEngine, rpi_store::StoreError> {
        crate::tier::load_tiered(dir, hot_cap)
    }

    /// The cold tier's residency counters, when tier-attached.
    pub fn tier_stats(&self) -> Option<crate::tier::TierStats> {
        self.tier
            .as_ref()
            .map(|t| t.stats(self.horizon.map(|h| h as usize)))
    }

    /// Where snapshot `id` currently lives, when tier-attached.
    pub fn residency(&self, id: SnapshotId) -> Option<crate::tier::Residency> {
        if id.index() >= self.snapshot_count() {
            return None;
        }
        self.tier.as_ref().and_then(|t| t.residency(id))
    }

    /// Where this engine's bytes live on disk, if it was loaded from or
    /// saved to an archive.
    pub fn archive_info(&self) -> Option<&crate::archive::ArchiveInfo> {
        self.archive.as_ref()
    }

    /// The on-disk segment behind snapshot `id` (`None` for engines that
    /// never touched disk, and for snapshots ingested after the
    /// save/load).
    pub fn segment_meta(&self, id: SnapshotId) -> Option<&crate::archive::SegmentMeta> {
        self.archive.as_ref()?.snapshots.get(id.index())
    }

    /// `(shared, total)` trie nodes of snapshot `id` relative to its
    /// predecessor (`shared == 0` for the first snapshot and for
    /// from-scratch ingests).
    pub fn sharing_with_prev(&self, id: SnapshotId) -> Option<(usize, usize)> {
        let snap = self.snapshot(id)?;
        let total = snap.trie_nodes();
        let shared = match id.index() {
            0 => 0,
            i => snap.trie_nodes_shared_with(self.snapshots.get(i - 1)?),
        };
        Some((shared, total))
    }

    /// Ingests an MRT TABLE_DUMP_V2 file image: decodes it, rebuilds the
    /// collector view, Gao-infers a relationship oracle from the dump's
    /// own paths, and indexes every peer as a vantage.
    pub fn ingest_mrt_bytes(&mut self, data: &[u8], label: &str) -> Result<SnapshotId, WireError> {
        let dump = TableDump::decode(bytes::Bytes::from(data.to_vec()))?;
        let view = bgp_sim::export::mrt_to_collector(&dump)?;
        let paths: Vec<&[Asn]> = view.all_paths().map(|r| r.path.as_slice()).collect();
        let inferred = as_relationships::infer(
            paths.iter().copied(),
            &as_relationships::InferenceParams::default(),
        );
        let oracle = inferred.to_graph();
        // From-scratch ingest under a dump-local oracle: see
        // `ingest_output` for why the cone cache must be dropped.
        self.cones.clear();
        let id = SnapshotId(self.snapshots.len() as u32);
        let mut snap =
            Snapshot::from_collector(id, label, &view, &oracle, &mut self.interner, self.n_shards);
        snap.interned_watermark = self.interner.sizes();
        self.snapshots.push(Arc::new(snap));
        Ok(id)
    }

    fn snapshot(&self, id: SnapshotId) -> Option<&Snapshot> {
        self.snapshots.get(id.index()).map(|a| &**a)
    }

    /// The snapshot behind `id` as a shared handle — straight from the
    /// in-memory list, or hydrated out of the cold tier (replaying its
    /// delta chain from the nearest keyframe) when tier-attached.
    pub(crate) fn snap_arc(&self, id: SnapshotId) -> Result<Arc<Snapshot>, QueryError> {
        if id.index() >= self.snapshot_count() {
            // Beyond the epoch horizon: the shared tier may already hold
            // newer snapshots, but this epoch must not serve them.
            return Err(QueryError::UnknownSnapshot(id));
        }
        match &self.tier {
            Some(tier) => tier.snapshot(self, id),
            None => self
                .snapshots
                .get(id.index())
                .cloned()
                .ok_or(QueryError::UnknownSnapshot(id)),
        }
    }

    /// The vantages of the latest snapshot, ascending by ASN.
    pub fn vantages(&self) -> Vec<(Asn, VantageKind)> {
        self.latest()
            .map_or_else(Vec::new, |id| self.vantages_in(id))
    }

    /// The vantages of a specific snapshot, ascending by ASN. On a
    /// tier-attached engine this reads the mapped segment's vantage
    /// directory where possible, so listing vantages never hydrates.
    pub fn vantages_in(&self, id: SnapshotId) -> Vec<(Asn, VantageKind)> {
        if id.index() >= self.snapshot_count() {
            return Vec::new();
        }
        if let Some(tier) = &self.tier {
            return tier.vantages(self, id);
        }
        let Some(snap) = self.snapshot(id) else {
            return Vec::new();
        };
        let mut out: Vec<(Asn, VantageKind)> = snap
            .vantage_syms()
            .map(|(s, k)| (self.interner.resolve_asn(s), k))
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    // ---------- the one protocol entry point ----------

    /// Executes one request: resolves its scope, evaluates the query.
    /// Negative answers inside a valid scope (missing routes, unknown
    /// ASes of point queries) are `Ok` responses; only unusable scopes
    /// and unknown history vantages are errors.
    pub fn execute(&self, req: &QueryRequest) -> Result<Response, QueryError> {
        match &req.query {
            Query::Diff => {
                let (from, to) = self.diff_scope(&req.scope)?;
                let a = self.snap_arc(from)?;
                let b = self.snap_arc(to)?;
                Ok(Response::Diff(SnapshotDiff::between(
                    &self.interner,
                    &a,
                    &b,
                )))
            }
            // Hijack detection is a history walk with no vantage operand,
            // so it cannot share `eval_history`'s vantage validation.
            Query::Hijacks => {
                let ids = self.scope_ids(&req.query, &req.scope)?;
                self.metrics.sec_hijacks_total.inc();
                Ok(Response::Hijacks(crate::sec::hijack_events(self, &ids)?))
            }
            q if q.is_history() => {
                let ids = self.scope_ids(q, &req.scope)?;
                self.eval_history(q, &ids)
            }
            q => {
                let id = self.single_scope(q, &req.scope)?;
                self.eval_point(q, id)
            }
        }
    }

    /// Executes a batch: requests are bucketed by target shard (exact
    /// route and SA-status lookups) or spread over a general lane
    /// (everything else), and the buckets evaluated concurrently under
    /// `std::thread::scope` — one worker per lane, capped at the
    /// machine's parallelism, so a batch touches each shard's tries from
    /// exactly one thread. Results keep request order.
    pub fn execute_batch(&self, reqs: &[QueryRequest]) -> Vec<Result<Response, QueryError>> {
        self.execute_batch_profiled(reqs).0
    }

    /// [`Self::execute_batch`] plus lane-level timing: how long each
    /// shard bucket and general chunk took, from which the batch's
    /// critical path (and so the speedup available from parallel shards)
    /// follows.
    pub fn execute_batch_profiled(
        &self,
        reqs: &[QueryRequest],
    ) -> (Vec<Result<Response, QueryError>>, BatchProfile) {
        crate::plan::run_batch(self, reqs)
    }

    /// Evaluates a point query against one already-validated snapshot.
    /// On a tier-attached engine, exact `route`/`resolve`/`rov` lookups
    /// against a cold full segment are answered zero-copy off the
    /// mapped bytes; everything else hydrates through
    /// [`Self::snap_arc`].
    pub(crate) fn eval_point(&self, query: &Query, id: SnapshotId) -> Result<Response, QueryError> {
        let snap = match &self.tier {
            Some(tier) => {
                if id.index() >= self.snapshot_count() {
                    // Beyond the epoch horizon: the shared tier may
                    // already hold newer snapshots, but this epoch must
                    // not serve them.
                    return Err(QueryError::UnknownSnapshot(id));
                }
                match tier.hot_get(id.0) {
                    // Hot hit: answer from the in-memory snapshot.
                    Some(snap) => snap,
                    None => {
                        if let Some(resp) = tier.try_cold(self, query, id)? {
                            return Ok(resp);
                        }
                        tier.snapshot(self, id)?
                    }
                }
            }
            None => self.snap_arc(id)?,
        };
        Ok(match *query {
            Query::Route { vantage, prefix } => {
                Response::Route(self.route_point(&snap, vantage, prefix))
            }
            Query::Resolve { vantage, prefix } => {
                Response::Route(self.resolve_point(&snap, vantage, prefix))
            }
            Query::SaStatus { vantage, prefix } => {
                Response::Sa(self.sa_point(&snap, vantage, prefix))
            }
            Query::Relationship { a, b } => Response::Relationship(self.rel_point(&snap, a, b)),
            Query::PolicySummary { asn } => Response::Summary(self.summary_point(&snap, asn)),
            Query::Rov { vantage, prefix } => {
                self.metrics.sec_rov_total.inc();
                Response::Rov(crate::sec::rov_point(self, &snap, vantage, prefix))
            }
            Query::Leaks => {
                self.metrics.sec_leaks_total.inc();
                Response::Leaks(crate::sec::leak_events(self, &snap))
            }
            _ => unreachable!("history and diff queries never reach eval_point"),
        })
    }

    fn eval_history(&self, query: &Query, ids: &[SnapshotId]) -> Result<Response, QueryError> {
        match *query {
            Query::SaHistory { vantage, prefix } => {
                self.interner
                    .lookup_asn(vantage)
                    .ok_or(QueryError::UnknownVantage(vantage))?;
                let mut points = Vec::with_capacity(ids.len());
                for &id in ids {
                    let snap = self.snap_arc(id)?;
                    points.push(SaHistoryPoint {
                        snapshot: id,
                        label: snap.label.clone(),
                        status: self.sa_point(&snap, vantage, prefix),
                    });
                }
                Ok(Response::SaHistory(points))
            }
            Query::UptimeHistogram { vantage } => {
                let v = self
                    .interner
                    .lookup_asn(vantage)
                    .ok_or(QueryError::UnknownVantage(vantage))?;
                let mut present: BTreeMap<Ipv4Prefix, usize> = BTreeMap::new();
                let mut sa_count: BTreeMap<Ipv4Prefix, usize> = BTreeMap::new();
                for &id in ids {
                    let snap = self.snap_arc(id)?;
                    for p in snap.table_prefixes(v) {
                        *present.entry(p).or_insert(0) += 1;
                    }
                    if let Some(cache) = snap.sa.get(&v) {
                        for &ps in cache.sa.keys() {
                            *sa_count
                                .entry(self.interner.resolve_prefix(ps))
                                .or_insert(0) += 1;
                        }
                    }
                }
                Ok(Response::Uptime(histogram_from_counts(&present, &sa_count)))
            }
            Query::TopKSaOrigins { vantage, k } => {
                let v = self
                    .interner
                    .lookup_asn(vantage)
                    .ok_or(QueryError::UnknownVantage(vantage))?;
                let mut per_origin: BTreeMap<Asn, BTreeSet<Ipv4Prefix>> = BTreeMap::new();
                for &id in ids {
                    let snap = self.snap_arc(id)?;
                    let Some(cache) = snap.sa.get(&v) else {
                        continue;
                    };
                    for (&ps, &origin) in &cache.sa {
                        per_origin
                            .entry(self.interner.resolve_asn(origin))
                            .or_default()
                            .insert(self.interner.resolve_prefix(ps));
                    }
                }
                let mut rows: Vec<SaOriginCount> = per_origin
                    .into_iter()
                    .map(|(origin, prefixes)| SaOriginCount {
                        origin,
                        prefixes: prefixes.len(),
                    })
                    .collect();
                rows.sort_by(|a, b| b.prefixes.cmp(&a.prefixes).then(a.origin.cmp(&b.origin)));
                rows.truncate(k);
                Ok(Response::TopSaOrigins(rows))
            }
            Query::PersistenceClass { vantage, prefix } => {
                let v = self
                    .interner
                    .lookup_asn(vantage)
                    .ok_or(QueryError::UnknownVantage(vantage))?;
                let ps = self.interner.lookup_prefix(prefix);
                let (mut present, mut sa) = (0usize, 0usize);
                for &id in ids {
                    let snap = self.snap_arc(id)?;
                    if snap.route(v, prefix).is_some() {
                        present += 1;
                    }
                    if let (Some(ps), Some(cache)) = (ps, snap.sa.get(&v)) {
                        if cache.sa.contains_key(&ps) {
                            sa += 1;
                        }
                    }
                }
                Ok(Response::Persistence(PersistenceAnswer {
                    snapshots: ids.len(),
                    present,
                    sa,
                    class: classify_persistence(present, sa),
                }))
            }
            _ => unreachable!("only history queries reach eval_history"),
        }
    }

    // ---------- point evaluation (shared by execute and the wrappers) ----------

    fn route_point(
        &self,
        snap: &Snapshot,
        vantage: Asn,
        prefix: Ipv4Prefix,
    ) -> Option<RouteAnswer> {
        let v = self.interner.lookup_asn(vantage)?;
        let route = snap.route(v, prefix)?;
        Some(self.answer(snap.id, vantage, prefix, route))
    }

    fn resolve_point(
        &self,
        snap: &Snapshot,
        vantage: Asn,
        prefix: Ipv4Prefix,
    ) -> Option<RouteAnswer> {
        let v = self.interner.lookup_asn(vantage)?;
        let (matched, route) = snap.route_lpm(v, prefix)?;
        Some(self.answer(snap.id, vantage, matched, route))
    }

    fn sa_point(&self, snap: &Snapshot, vantage: Asn, prefix: Ipv4Prefix) -> SaStatus {
        let Some(v) = self.interner.lookup_asn(vantage) else {
            return SaStatus::UnknownVantage;
        };
        let Some(cache) = snap.sa.get(&v) else {
            return SaStatus::UnknownVantage;
        };
        let Some(p) = self.interner.lookup_prefix(prefix) else {
            return SaStatus::NotInTable;
        };
        if let Some(&origin) = cache.sa.get(&p) {
            return SaStatus::SelectivelyAnnounced {
                origin: self.interner.resolve_asn(origin),
            };
        }
        if let Some(&origin) = cache.exported.get(&p) {
            return SaStatus::CustomerExported {
                origin: self.interner.resolve_asn(origin),
            };
        }
        if snap.route(v, prefix).is_some() {
            SaStatus::NotCustomerRoute
        } else {
            SaStatus::NotInTable
        }
    }

    fn rel_point(&self, snap: &Snapshot, a: Asn, b: Asn) -> Option<Relationship> {
        let sa = self.interner.lookup_asn(a)?;
        let sb = self.interner.lookup_asn(b)?;
        snap.relationships.get(&(sa, sb)).copied()
    }

    fn summary_point(&self, snap: &Snapshot, asn: Asn) -> Option<PolicySummary> {
        let s = self.interner.lookup_asn(asn)?;
        let table = snap.vantages.get(&s);
        let cache = snap.sa.get(&s);

        let neighbor_counts = snap.neighbor_counts.get(&s).copied().unwrap_or_default();

        Some(PolicySummary {
            asn,
            kind: table.map(|t| t.kind),
            routes: table.map_or(0, |t| t.route_count),
            customer_prefixes: cache.map_or(0, |c| c.customer_prefixes),
            sa_count: cache.map_or(0, |c| c.sa.len()),
            typicality: snap.typicality.get(&s).copied(),
            tagged_neighbors: snap.community_class.get(&s).map_or(0, |m| m.len()),
            neighbor_counts,
        })
    }

    // ---------- the legacy method zoo: thin wrappers over execute ----------

    /// Exact best-route lookup in the latest snapshot.
    pub fn route_at(&self, vantage: Asn, prefix: Ipv4Prefix) -> Option<RouteAnswer> {
        self.route_query(Query::Route { vantage, prefix }.at(Scope::Latest))
    }

    /// Exact best-route lookup in a specific snapshot.
    pub fn route_at_in(
        &self,
        id: SnapshotId,
        vantage: Asn,
        prefix: Ipv4Prefix,
    ) -> Option<RouteAnswer> {
        self.route_query(Query::Route { vantage, prefix }.at(Scope::Id(id)))
    }

    /// Longest-prefix-match lookup in the latest snapshot: how would the
    /// vantage route traffic for this (possibly more-specific) prefix?
    pub fn resolve(&self, vantage: Asn, prefix: Ipv4Prefix) -> Option<RouteAnswer> {
        self.route_query(Query::Resolve { vantage, prefix }.at(Scope::Latest))
    }

    /// Longest-prefix-match lookup in a specific snapshot. Consults every
    /// shard (covering prefixes hash independently) and keeps the longest.
    pub fn resolve_in(
        &self,
        id: SnapshotId,
        vantage: Asn,
        prefix: Ipv4Prefix,
    ) -> Option<RouteAnswer> {
        self.route_query(Query::Resolve { vantage, prefix }.at(Scope::Id(id)))
    }

    fn route_query(&self, req: QueryRequest) -> Option<RouteAnswer> {
        match self.execute(&req) {
            Ok(Response::Route(ans)) => ans,
            _ => None,
        }
    }

    /// Fig. 4 status of a prefix as seen from a vantage, latest snapshot.
    pub fn sa_status(&self, vantage: Asn, prefix: Ipv4Prefix) -> SaStatus {
        self.sa_query(Query::SaStatus { vantage, prefix }.at(Scope::Latest))
    }

    /// Fig. 4 status of a prefix as seen from a vantage.
    pub fn sa_status_in(&self, id: SnapshotId, vantage: Asn, prefix: Ipv4Prefix) -> SaStatus {
        self.sa_query(Query::SaStatus { vantage, prefix }.at(Scope::Id(id)))
    }

    fn sa_query(&self, req: QueryRequest) -> SaStatus {
        match self.execute(&req) {
            Ok(Response::Sa(status)) => status,
            _ => SaStatus::UnknownVantage,
        }
    }

    /// The oracle relationship `b is a's …` in the latest snapshot.
    pub fn relationship(&self, a: Asn, b: Asn) -> Option<Relationship> {
        match self.execute(&Query::Relationship { a, b }.at(Scope::Latest)) {
            Ok(Response::Relationship(rel)) => rel,
            _ => None,
        }
    }

    /// The oracle relationship `b is a's …` in a specific snapshot.
    pub fn relationship_in(&self, id: SnapshotId, a: Asn, b: Asn) -> Option<Relationship> {
        match self.execute(&Query::Relationship { a, b }.at(Scope::Id(id))) {
            Ok(Response::Relationship(rel)) => rel,
            _ => None,
        }
    }

    /// Per-AS policy digest from the latest snapshot.
    pub fn policy_summary(&self, asn: Asn) -> Option<PolicySummary> {
        match self.execute(&Query::PolicySummary { asn }.at(Scope::Latest)) {
            Ok(Response::Summary(s)) => s,
            _ => None,
        }
    }

    /// Per-AS policy digest from a specific snapshot. `None` only when the
    /// snapshot id is invalid or the AS was never seen at ingest time.
    pub fn policy_summary_in(&self, id: SnapshotId, asn: Asn) -> Option<PolicySummary> {
        match self.execute(&Query::PolicySummary { asn }.at(Scope::Id(id))) {
            Ok(Response::Summary(s)) => s,
            _ => None,
        }
    }

    /// Batched exact route lookups against the latest snapshot.
    pub fn route_at_batch(&self, queries: &[(Asn, Ipv4Prefix)]) -> Vec<Option<RouteAnswer>> {
        match self.latest() {
            Some(id) => self.route_at_batch_in(id, queries),
            None => vec![None; queries.len()],
        }
    }

    /// Batched exact route lookups in a specific snapshot; delegates to
    /// [`Self::execute_batch`].
    pub fn route_at_batch_in(
        &self,
        id: SnapshotId,
        queries: &[(Asn, Ipv4Prefix)],
    ) -> Vec<Option<RouteAnswer>> {
        self.route_at_batch_profiled(id, queries).0
    }

    /// [`Self::route_at_batch_in`] plus the batch's [`BatchProfile`].
    pub fn route_at_batch_profiled(
        &self,
        id: SnapshotId,
        queries: &[(Asn, Ipv4Prefix)],
    ) -> (Vec<Option<RouteAnswer>>, BatchProfile) {
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|&(vantage, prefix)| Query::Route { vantage, prefix }.at(Scope::Id(id)))
            .collect();
        let (results, profile) = self.execute_batch_profiled(&reqs);
        let answers = results
            .into_iter()
            .map(|r| match r {
                Ok(Response::Route(ans)) => ans,
                _ => None,
            })
            .collect();
        (answers, profile)
    }

    /// Batched Fig. 4 statuses against the latest snapshot; delegates to
    /// [`Self::execute_batch`].
    pub fn sa_status_batch(&self, queries: &[(Asn, Ipv4Prefix)]) -> Vec<SaStatus> {
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|&(vantage, prefix)| Query::SaStatus { vantage, prefix }.at(Scope::Latest))
            .collect();
        self.execute_batch(&reqs)
            .into_iter()
            .map(|r| match r {
                Ok(Response::Sa(status)) => status,
                _ => SaStatus::UnknownVantage,
            })
            .collect()
    }

    // ---------- diffing ----------

    /// What changed between two snapshots. `None` on an invalid id.
    pub fn diff(&self, from: SnapshotId, to: SnapshotId) -> Option<SnapshotDiff> {
        match self.execute(&Query::Diff.at(Scope::Range(from, to))) {
            Ok(Response::Diff(d)) => Some(d),
            _ => None,
        }
    }

    fn answer(
        &self,
        id: SnapshotId,
        vantage: Asn,
        prefix: Ipv4Prefix,
        route: &crate::snapshot::CompactRoute,
    ) -> RouteAnswer {
        RouteAnswer {
            snapshot: id,
            vantage,
            prefix,
            next_hop: self.interner.resolve_asn(route.next_hop),
            path: route
                .path
                .iter()
                .map(|&s| self.interner.resolve_asn(s))
                .collect(),
        }
    }
}
