//! Security detection over indexed snapshots — the engine-side half of
//! the `rpi-sec` subsystem.
//!
//! Three detectors, all read-only over the snapshot structures the
//! ordinary queries use:
//!
//! * [`rov_point`] — RFC 6811 route-origin validation of a vantage's
//!   best route against the engine's [`rpi_sec::RoaTable`], through the
//!   engine's bounded [`rpi_sec::RovCache`];
//! * [`hijack_events`] — origin-hijack / subprefix-hijack / MOAS events
//!   across a snapshot series, judged against the *first* scoped
//!   snapshot's ownership baseline and the relationship oracle's
//!   customer cones (the paper's Fig. 4 cone test, aimed at origins
//!   instead of export policies);
//! * [`leak_events`] — valley-free violations among the stored best
//!   paths of one snapshot, mirroring [`net_topology::classify_path`]'s
//!   phase machine at interned-symbol level and naming the AS that
//!   forwarded a provider- or peer-learned route back up.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use bgp_types::{Asn, Ipv4Prefix, Relationship};

use crate::engine::QueryEngine;
use crate::intern::AsnSym;
use crate::plan::QueryError;
use crate::proto::{HijackEvent, HijackKind, LeakEvent, RovAnswer};
use crate::snapshot::{Snapshot, SnapshotId};

/// Validates the vantage's best route for `prefix` against the engine's
/// ROA table. Non-vantage ASes answer [`RovAnswer::UnknownVantage`]; a
/// vantage without the exact route answers [`RovAnswer::NoRoute`] —
/// negative answers, not errors, like every other point query.
pub(crate) fn rov_point(
    engine: &QueryEngine,
    snap: &Snapshot,
    vantage: Asn,
    prefix: Ipv4Prefix,
) -> RovAnswer {
    let Some(v) = engine.interner.lookup_asn(vantage) else {
        return RovAnswer::UnknownVantage;
    };
    if !snap.vantages.contains_key(&v) {
        return RovAnswer::UnknownVantage;
    }
    let Some(route) = snap.route(v, prefix) else {
        return RovAnswer::NoRoute;
    };
    let origin = engine
        .interner
        .resolve_asn(*route.path.last().expect("stored paths are non-empty"));
    let (validity, covering) = engine.rov_cache.validate(&engine.roas, prefix, origin);
    RovAnswer::Validated {
        origin,
        validity,
        covering,
    }
}

/// Every (prefix → announcing origins) pair visible across the
/// snapshot's vantage tables, resolved to raw ASNs and fully ordered.
fn origins_per_prefix(
    engine: &QueryEngine,
    snap: &Snapshot,
) -> BTreeMap<Ipv4Prefix, BTreeSet<Asn>> {
    let mut out: BTreeMap<Ipv4Prefix, BTreeSet<Asn>> = BTreeMap::new();
    for table in snap.vantages.values() {
        for shard in &table.shards {
            for (p, r) in shard.iter() {
                let origin = *r.path.last().expect("stored paths are non-empty");
                out.entry(p)
                    .or_default()
                    .insert(engine.interner.resolve_asn(origin));
            }
        }
    }
    out
}

/// Lazily-built customer cones over one snapshot's relationship map —
/// the BFS of [`net_topology::CustomerCone::build`], run on the indexed
/// relationships so detection needs no live oracle.
struct SnapshotCones {
    /// customer/sibling out-edges: `adj[a]` are the ASes `a` forwards
    /// everything to (its customers and siblings).
    adj: HashMap<Asn, Vec<Asn>>,
    memo: HashMap<Asn, BTreeSet<Asn>>,
}

impl SnapshotCones {
    fn build(engine: &QueryEngine, snap: &Snapshot) -> SnapshotCones {
        let mut adj: HashMap<Asn, Vec<Asn>> = HashMap::new();
        for (&(a, b), rel) in snap.relationships.iter() {
            if matches!(rel, Relationship::Customer | Relationship::Sibling) {
                adj.entry(engine.interner.resolve_asn(a))
                    .or_default()
                    .push(engine.interner.resolve_asn(b));
            }
        }
        SnapshotCones {
            adj,
            memo: HashMap::new(),
        }
    }

    /// Is `asn` in `root`'s transitive customer cone (root excluded)?
    fn contains(&mut self, root: Asn, asn: Asn) -> bool {
        let cone = self.memo.entry(root).or_insert_with(|| {
            let mut members = BTreeSet::new();
            let mut seen = BTreeSet::from([root]);
            let mut queue = VecDeque::from([root]);
            while let Some(u) = queue.pop_front() {
                for &v in self.adj.get(&u).into_iter().flatten() {
                    if seen.insert(v) {
                        members.insert(v);
                        queue.push_back(v);
                    }
                }
            }
            members
        });
        cone.contains(&asn)
    }
}

/// The longest baseline prefix strictly covering `p` that has owners.
fn covering_base(
    base: &BTreeMap<Ipv4Prefix, BTreeSet<Asn>>,
    p: Ipv4Prefix,
) -> Option<(Ipv4Prefix, &BTreeSet<Asn>)> {
    for len in (0..p.len()).rev() {
        let key = Ipv4Prefix::canonical(p.bits(), len);
        if let Some(owners) = base.get(&key) {
            return Some((key, owners));
        }
    }
    None
}

/// Scans the scoped snapshots for origin anomalies against the **first**
/// snapshot's ownership baseline (prefix → set of announcing origins).
/// Three kinds of event, each reported at the first snapshot where the
/// (kind, prefix, origin) triple appears:
///
/// * [`HijackKind::Origin`] — a baseline prefix picks up an origin that
///   is neither an owner nor inside any owner's customer cone (an owner
///   re-originating through a customer is routine; a stranger is not);
/// * [`HijackKind::Subprefix`] — a prefix absent from the baseline whose
///   longest covering baseline prefix has owners, announced by an origin
///   outside all their cones;
/// * [`HijackKind::Moas`] — a baseline prefix announced by ≥2 distinct
///   origins in one snapshot, reported for each non-owner origin (a
///   multi-origin *baseline* is accepted state and never reported).
pub(crate) fn hijack_events(
    engine: &QueryEngine,
    ids: &[SnapshotId],
) -> Result<Vec<HijackEvent>, QueryError> {
    let _scan = rpi_obs::span(&engine.metrics.sec_scan_hijacks_seconds);
    let Some(&first) = ids.first() else {
        return Ok(Vec::new());
    };
    let first_snap = engine.snap_arc(first)?;
    let base = origins_per_prefix(engine, &first_snap);
    let mut seen: HashSet<(HijackKind, Ipv4Prefix, Asn)> = HashSet::new();
    let mut events = Vec::new();
    for &id in ids {
        let snap = engine.snap_arc(id)?;
        let origins = origins_per_prefix(engine, &snap);
        let mut cones = SnapshotCones::build(engine, &snap);
        let mut push =
            |kind: HijackKind, prefix: Ipv4Prefix, origin: Asn, owners: &BTreeSet<Asn>| {
                events.push(HijackEvent {
                    snapshot: id,
                    label: snap.label.clone(),
                    kind,
                    prefix,
                    origin,
                    owners: owners.iter().copied().collect(),
                });
            };
        for (&p, os) in &origins {
            if let Some(owners) = base.get(&p) {
                let moas = os.len() > 1;
                for &o in os {
                    if owners.contains(&o) {
                        continue;
                    }
                    let outside_cones = owners.iter().all(|&w| !cones.contains(w, o));
                    if outside_cones && seen.insert((HijackKind::Origin, p, o)) {
                        push(HijackKind::Origin, p, o, owners);
                    }
                    if moas && seen.insert((HijackKind::Moas, p, o)) {
                        push(HijackKind::Moas, p, o, owners);
                    }
                }
            } else if let Some((_, owners)) = covering_base(&base, p) {
                for &o in os {
                    if owners.contains(&o) {
                        continue;
                    }
                    let outside_cones = owners.iter().all(|&w| !cones.contains(w, o));
                    if outside_cones && seen.insert((HijackKind::Subprefix, p, o)) {
                        push(HijackKind::Subprefix, p, o, owners);
                    }
                }
            }
        }
    }
    Ok(events)
}

/// The phase machine of [`net_topology::classify_path`] at symbol level,
/// returning the AS that exported a provider- or peer-learned route up
/// or across (`None`: valley-free, or the oracle lacks an adjacency —
/// an incomplete path is not convicted). `speaker_first` must include
/// the speaker itself.
fn valley_leaker(
    rels: &HashMap<(AsnSym, AsnSym), Relationship>,
    speaker_first: &[AsnSym],
) -> Option<AsnSym> {
    #[derive(Clone, Copy)]
    enum Phase {
        Climb,
        Peered,
        Descend,
    }
    enum Hop {
        Up,
        Flat,
        Down,
    }
    let mut phase = Phase::Climb;
    // Origin-first: the direction the announcement traveled.
    for w in speaker_first.windows(2).rev() {
        let (from, to) = (w[1], w[0]);
        let hop = match rels.get(&(from, to)) {
            Some(Relationship::Provider) => Hop::Up,
            Some(Relationship::Peer) => Hop::Flat,
            Some(Relationship::Customer) => Hop::Down,
            Some(Relationship::Sibling) => continue,
            None => return None,
        };
        phase = match (phase, hop) {
            (Phase::Climb, Hop::Up) => Phase::Climb,
            (Phase::Climb, Hop::Flat) => Phase::Peered,
            (_, Hop::Down) => Phase::Descend,
            // Any up/flat hop after the peak: `from` leaked the route.
            (Phase::Peered | Phase::Descend, Hop::Up | Hop::Flat) => return Some(from),
        };
    }
    None
}

/// Scans every stored best path of one snapshot for valley-free
/// violations. Collector-peer tables store the vantage at the head of
/// each path; Looking-Glass tables start at the announcing neighbor, so
/// the vantage is prepended before classification — the leak verdict
/// must cover the final hop into the vantage too. Events are ordered by
/// (vantage, prefix).
pub(crate) fn leak_events(engine: &QueryEngine, snap: &Snapshot) -> Vec<LeakEvent> {
    let _scan = rpi_obs::span(&engine.metrics.sec_scan_leaks_seconds);
    let mut vantages: Vec<(Asn, AsnSym)> = snap
        .vantages
        .keys()
        .map(|&s| (engine.interner.resolve_asn(s), s))
        .collect();
    vantages.sort_unstable();

    let mut out = Vec::new();
    let mut full: Vec<AsnSym> = Vec::new();
    for (vantage, v) in vantages {
        let table = &snap.vantages[&v];
        let mut rows: Vec<(Ipv4Prefix, &crate::snapshot::CompactRoute)> =
            table.shards.iter().flat_map(|s| s.iter()).collect();
        rows.sort_unstable_by_key(|&(p, _)| p);
        for (prefix, route) in rows {
            full.clear();
            if route.path.first() != Some(&v) {
                full.push(v);
            }
            full.extend_from_slice(&route.path);
            if let Some(leaker) = valley_leaker(&snap.relationships, &full) {
                out.push(LeakEvent {
                    vantage,
                    prefix,
                    leaker: engine.interner.resolve_asn(leaker),
                    path: full
                        .iter()
                        .map(|&s| engine.interner.resolve_asn(s))
                        .collect(),
                });
            }
        }
    }
    out
}
