//! The rpi-live contract, enforced differentially and under fire:
//!
//! * **Live ≡ offline, byte-identical.** A live engine fed a delta-event
//!   stream frame by frame — epoch published after every snapshot, hot
//!   window bounded, older snapshots spilled to mapped rpi-store
//!   segments — must render responses byte-identical to an offline
//!   engine built from the same events in one shot, at *every* epoch,
//!   across *every* protocol verb, errors included. Attacked series
//!   (hijacks, leaks injected mid-stream) must convict identically.
//! * **Readers are never torn.** N reader threads hammering
//!   `execute_batch` during publication must each see responses
//!   consistent with exactly one epoch, snapshot counts monotone per
//!   reader, and the drained end state equal to the offline build.
//! * **Failure is typed.** A stream that ends mid-frame is a
//!   [`LiveError::Truncated`] naming the byte offset; every complete
//!   frame before the cut is published, the partial one never is.
//!
//! CI runs the fixed seed matrix below; `RPI_LIVE_SEEDS=seed1,seed2,…`
//! adds extra seeds without a rebuild (mirroring `RPI_DIFF_SEEDS` and
//! `RPI_TIER_SEEDS`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::prelude::*;
use rand::rngs::StdRng;

use bgp_sim::churn::simulate_series;
use bgp_sim::stream::{next_step, read_header, StreamFrame, StreamStep, StreamWriter};
use bgp_sim::{ChurnConfig, GroundTruth, PolicyParams, SimOutput, VantageSpec};
use bgp_types::{Asn, Ipv4Prefix, Relationship};
use net_topology::{AsGraph, InternetConfig, InternetSize};
use rpi_query::{
    drain_stream, follow_stream, render_response, FollowEnd, LiveError, LiveHandle, LiveOptions,
    LiveWriter, Query, QueryEngine, QueryRequest, Scope, SnapshotId,
};

const SNAPSHOTS: usize = 8;
/// Queries per published epoch (the mid-stream differential).
const EPOCH_QUERIES: usize = 48;
/// Queries against the drained end state (the full-matrix differential).
const QUERIES: usize = 400;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rpi-live-test-{tag}-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// One churn scenario: per-step outputs and oracles plus the query
/// universes — the same event mix the offline differential suites use
/// (policy flips, flaps, vantage loss, a mid-series relationship flip).
struct Scenario {
    labels: Vec<String>,
    outputs: Vec<SimOutput>,
    oracles: Vec<AsGraph>,
    /// The step at which the oracle flips (the stream frame that carries
    /// a full oracle replacement), if any.
    flip_at: Option<usize>,
    vantages: Vec<Asn>,
    prefixes: Vec<Ipv4Prefix>,
}

fn some_edge(g: &AsGraph, rng: &mut StdRng) -> Option<(Asn, Asn, Relationship)> {
    let mut edges = Vec::new();
    for a in g.ases() {
        for (b, rel) in g.neighbors(a) {
            edges.push((a, b, rel));
            if edges.len() >= 64 {
                break;
            }
        }
    }
    edges.choose(rng).copied()
}

fn build_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11FE_0A11);
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(seed)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    let cfg = ChurnConfig {
        seed,
        steps: SNAPSHOTS,
        flip_prob: rng.gen_range(0.05..0.6),
        link_failure_prob: rng.gen_range(0.05..0.4),
        label: "lv",
    };
    let series = simulate_series(&g, &truth, &spec, &cfg);
    let labels = series.labels;
    let mut outputs = series.snapshots;

    // Vantage loss: one LG and one collector peer disappear mid-series,
    // exactly as a dead feed would look on the wire.
    let from = rng.gen_range(1..SNAPSHOTS - 2);
    let to = rng.gen_range(from + 1..SNAPSHOTS);
    let lg_pool: Vec<Asn> = outputs[0].lgs.keys().copied().collect();
    if let Some(&lg) = lg_pool.choose(&mut rng) {
        for out in &mut outputs[from..to] {
            out.lgs.remove(&lg);
        }
    }
    if let Some(&peer) = outputs[0].collector.peers.clone().choose(&mut rng) {
        let from = rng.gen_range(1..SNAPSHOTS - 1);
        for out in &mut outputs[from..] {
            out.collector.peers.retain(|&p| p != peer);
            for rows in out.collector.rows.values_mut() {
                rows.retain(|r| r.peer != peer);
            }
            out.collector.rows.retain(|_, rows| !rows.is_empty());
        }
    }

    // Relationship flip: from a random step onward the oracle swaps one
    // edge's relationship — the stream frame at that step carries a full
    // oracle replacement.
    let mut oracles = vec![g.clone(); outputs.len()];
    let mut flip_at = None;
    if let Some((a, b, rel)) = some_edge(&g, &mut rng) {
        let mut flipped = g.clone();
        flipped.remove_edge(a, b);
        let new_rel = match rel {
            Relationship::Customer | Relationship::Provider => Relationship::Peer,
            _ => Relationship::Customer,
        };
        let _ = flipped.add_edge(a, b, new_rel);
        let from = rng.gen_range(1..outputs.len());
        for o in &mut oracles[from..] {
            *o = flipped.clone();
        }
        flip_at = Some(from);
    }

    let mut vantages: Vec<Asn> = spec.collector_peers.clone();
    vantages.extend(&spec.lg_ases);
    vantages.push(Asn(65_500)); // never a vantage
    vantages.dedup();
    let mut prefixes: Vec<Ipv4Prefix> = outputs
        .iter()
        .flat_map(|o| o.collector.rows.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    prefixes.push("203.0.113.0/24".parse().unwrap()); // never announced
    prefixes.push("0.0.0.0/0".parse().unwrap());

    Scenario {
        labels,
        outputs,
        oracles,
        flip_at,
        vantages,
        prefixes,
    }
}

/// Encodes the scenario as one complete stream file (header, one frame
/// per snapshot, end marker).
fn encode_stream(sc: &Scenario) -> Vec<u8> {
    let (mut w, mut bytes) = StreamWriter::open(&sc.oracles[0]);
    for i in 0..sc.outputs.len() {
        let new_oracle = (sc.flip_at == Some(i)).then_some(&sc.oracles[i]);
        bytes.extend_from_slice(&w.frame(&sc.labels[i], &sc.outputs[i], new_oracle));
    }
    bytes.extend_from_slice(&w.end());
    bytes
}

/// Decodes a complete stream back into its header oracle and frames.
fn decode_stream(bytes: &[u8]) -> (AsGraph, Vec<StreamFrame>) {
    let (oracle, mut offset) = read_header(bytes)
        .expect("header")
        .expect("complete header");
    let mut frames = Vec::new();
    loop {
        match next_step(bytes, offset).expect("step") {
            StreamStep::Frame(f, next) => {
                frames.push(*f);
                offset = next;
            }
            StreamStep::End(_) => return (oracle, frames),
            StreamStep::NeedMore => panic!("complete stream reported NeedMore"),
        }
    }
}

/// The offline reference: the ordinary incremental-ingest path fed the
/// same reconstructed outputs the live writer applies.
struct Offline {
    engine: QueryEngine,
    oracle: AsGraph,
    prev: SimOutput,
    n: usize,
}

impl Offline {
    fn new(header_oracle: &AsGraph, shards: usize) -> Offline {
        Offline {
            engine: QueryEngine::new(shards),
            oracle: header_oracle.clone(),
            prev: SimOutput::default(),
            n: 0,
        }
    }

    fn ingest(&mut self, frame: &StreamFrame) {
        let out = frame.apply(&self.prev);
        if let Some(g) = &frame.oracle {
            self.oracle = g.clone();
        }
        if self.n == 0 {
            self.engine.ingest_output(&out, &self.oracle, &frame.label);
        } else {
            self.engine
                .ingest_output_incremental(&self.prev, &out, &self.oracle, &frame.label);
        }
        self.prev = out;
        self.n += 1;
    }
}

fn arb_point_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..4u8) {
        0 => Scope::Latest,
        1 => Scope::Id(SnapshotId(rng.gen_range(0..n as u32))),
        2 => Scope::Id(SnapshotId(n as u32 + 3)), // invalid: errors must match too
        _ => Scope::All,                          // scope mismatch for point queries
    }
}

fn arb_history_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..3u8) {
        0 => Scope::All,
        1 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(a..n as u32);
            Scope::Range(SnapshotId(a), SnapshotId(b))
        }
        _ => Scope::Latest,
    }
}

/// Every protocol verb, random scopes — the byte-equivalence surface.
fn arb_request(rng: &mut StdRng, sc: &Scenario, n: usize) -> QueryRequest {
    let vantage = *sc.vantages.choose(rng).unwrap();
    let prefix = *sc.prefixes.choose(rng).unwrap();
    match rng.gen_range(0..13u8) {
        0 => Query::Route { vantage, prefix }.at(arb_point_scope(rng, n)),
        1 => Query::Resolve { vantage, prefix }.at(arb_point_scope(rng, n)),
        2 => Query::SaStatus { vantage, prefix }.at(arb_point_scope(rng, n)),
        3 => {
            let b = *sc.vantages.choose(rng).unwrap();
            Query::Relationship { a: vantage, b }.at(arb_point_scope(rng, n))
        }
        4 => Query::PolicySummary { asn: vantage }.at(arb_point_scope(rng, n)),
        5 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            Query::Diff.at(Scope::Range(SnapshotId(a), SnapshotId(b)))
        }
        6 => Query::SaHistory { vantage, prefix }.at(arb_history_scope(rng, n)),
        7 => Query::UptimeHistogram { vantage }.at(arb_history_scope(rng, n)),
        8 => Query::TopKSaOrigins {
            vantage,
            k: rng.gen_range(0..6usize),
        }
        .at(arb_history_scope(rng, n)),
        9 => Query::PersistenceClass { vantage, prefix }.at(arb_history_scope(rng, n)),
        10 => Query::Rov { vantage, prefix }.at(arb_point_scope(rng, n)),
        11 => Query::Hijacks.at(arb_history_scope(rng, n)),
        _ => Query::Leaks.at(arb_point_scope(rng, n)),
    }
}

fn rendered(engine: &QueryEngine, req: &QueryRequest) -> String {
    match engine.execute(req) {
        Ok(resp) => render_response(req, &resp),
        Err(e) => format!("error: {e}"),
    }
}

/// The tentpole differential: drain the stream into a live engine
/// (publishing an epoch per frame) while building the offline reference
/// in lockstep, and compare rendered responses byte for byte — at every
/// epoch as it is published, and exhaustively against the drained end
/// state. `window` bounds the hot set, so small windows force the
/// comparison across the hot/spilled boundary.
fn run_live_differential(seed: u64, window: usize, tag: &str) {
    let sc = build_scenario(seed);

    // The scenario must bite: a seed with no churn holds this vacuously.
    let route_events: usize = sc
        .outputs
        .windows(2)
        .map(|w| bgp_sim::output_delta(&w[0], &w[1]).route_events())
        .sum();
    assert!(
        route_events > 0,
        "seed {seed}: degenerate scenario (no churn at all) — pick another seed"
    );

    let bytes = encode_stream(&sc);
    let dir = tmp_dir(tag);
    let stream = dir.join("live.stream");
    std::fs::write(&stream, &bytes).unwrap();
    let spill = dir.join("spill");

    let (header_oracle, frames) = decode_stream(&bytes);
    assert_eq!(frames.len(), SNAPSHOTS);

    let handle = LiveHandle::new(QueryEngine::new(4));
    assert_eq!(handle.current().snapshot_count(), 0);

    let mut offline = Offline::new(&header_oracle, 4);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11FE_57A6);
    let mut answered = 0usize;
    let report = drain_stream(
        &stream,
        Arc::clone(&handle),
        &spill,
        LiveOptions {
            window,
            keyframe_every: 3,
        },
        |published, label| {
            // Lockstep: the offline reference ingests the same frame,
            // then the *currently visible* epoch must match it exactly.
            let frame = &frames[(published - 1) as usize];
            assert_eq!(frame.label, label);
            offline.ingest(frame);
            let epoch = handle.current();
            let n = epoch.snapshot_count();
            assert_eq!(n as u64, published, "epoch lags its publication");
            assert_eq!(epoch.labels(), offline.engine.labels());
            for i in 0..EPOCH_QUERIES {
                let req = arb_request(&mut rng, &sc, n);
                let a = rendered(&offline.engine, &req);
                let b = rendered(&epoch, &req);
                assert_eq!(
                    a, b,
                    "seed {seed}, epoch {n}, query {i}: live diverged on {req:?}"
                );
                if !a.starts_with("error:") {
                    answered += 1;
                }
            }
        },
    )
    .expect("complete stream drains");
    assert_eq!(report.end, FollowEnd::EndMarker);
    assert_eq!(report.snapshots, SNAPSHOTS as u64);
    assert_eq!(handle.published(), SNAPSHOTS as u64);
    assert!(handle.ended());

    // The drained end state: identical symbol sets, then the full query
    // matrix — including history verbs spanning the hot/spilled boundary.
    let live = handle.current();
    let n = live.snapshot_count();
    assert_eq!(n, SNAPSHOTS);
    assert_eq!(
        live.interned_sizes(),
        offline.engine.interned_sizes(),
        "seed {seed}: live interning diverged"
    );
    for i in 0..QUERIES {
        let req = arb_request(&mut rng, &sc, n);
        let a = rendered(&offline.engine, &req);
        let b = rendered(&live, &req);
        assert_eq!(
            a, b,
            "seed {seed}, query {i}: drained state diverged on {req:?}"
        );
        if !a.starts_with("error:") {
            answered += 1;
        }
    }
    assert!(
        answered > (QUERIES + SNAPSHOTS * EPOCH_QUERIES) / 2,
        "seed {seed}: scenario too degenerate, only {answered} answered"
    );

    // The batched path flows through the same epoch.
    let reqs: Vec<QueryRequest> = (0..64).map(|_| arb_request(&mut rng, &sc, n)).collect();
    let batched = live.execute_batch(&reqs);
    for (req, res) in reqs.iter().zip(batched) {
        let line = match res {
            Ok(resp) => render_response(req, &resp),
            Err(e) => format!("error: {e}"),
        };
        assert_eq!(
            line,
            rendered(&offline.engine, req),
            "seed {seed}: batched path diverged"
        );
    }

    // The hot window really is bounded: spilled snapshots answered cold.
    let stats = live.tier_stats().expect("live engines are tier-backed");
    assert_eq!(stats.snapshots, SNAPSHOTS);
    assert!(
        stats.hot <= window.max(1),
        "hot set exceeded --window: {stats:?}"
    );
    if window < SNAPSHOTS {
        assert!(
            stats.evictions > 0,
            "a window below the snapshot count must evict: {stats:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// The fixed seed matrix CI runs; windows vary so every run crosses the
// hot/spilled boundary differently (1 = everything but the newest spills).

#[test]
fn live_differential_seed_0xa1_window_2() {
    run_live_differential(0xA1, 2, "a1");
}

#[test]
fn live_differential_seed_0xb2_window_1() {
    run_live_differential(0xB2, 1, "b2");
}

#[test]
fn live_differential_seed_0xc3_window_4() {
    run_live_differential(0xC3, 4, "c3");
}

/// Extra seeds without a rebuild: `RPI_LIVE_SEEDS=7,8,9 cargo test …`.
#[test]
fn live_differential_extra_seeds_from_env() {
    let Ok(spec) = std::env::var("RPI_LIVE_SEEDS") else {
        return;
    };
    for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = part
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad seed '{part}' in RPI_LIVE_SEEDS"));
        run_live_differential(seed, 2, "env");
    }
}

/// History verbs spanning the hot/spilled boundary answer byte-identical
/// to the offline build with the tightest possible window (1): `uptime`
/// and `sa-history` walk spilled segments, and `diff @a..b` crosses the
/// boundary in both directions (a spilled, b hot).
#[test]
fn history_spans_hot_and_spilled_with_window_1() {
    let seed = 0x1D;
    let sc = build_scenario(seed);
    let bytes = encode_stream(&sc);
    let dir = tmp_dir("boundary");
    let stream = dir.join("live.stream");
    std::fs::write(&stream, &bytes).unwrap();

    let (header_oracle, frames) = decode_stream(&bytes);
    let mut offline = Offline::new(&header_oracle, 4);
    for f in &frames {
        offline.ingest(f);
    }

    let handle = LiveHandle::new(QueryEngine::new(4));
    drain_stream(
        &stream,
        Arc::clone(&handle),
        &dir.join("spill"),
        LiveOptions {
            window: 1,
            keyframe_every: 2,
        },
        |_, _| {},
    )
    .expect("drain");
    let live = handle.current();
    let n = SNAPSHOTS as u32;

    for &vantage in sc.vantages.iter().take(5) {
        for &prefix in sc.prefixes.iter().take(4) {
            for req in [
                Query::UptimeHistogram { vantage }.at(Scope::All),
                Query::SaHistory { vantage, prefix }.at(Scope::All),
                Query::PersistenceClass { vantage, prefix }
                    .at(Scope::Range(SnapshotId(0), SnapshotId(n - 1))),
                // a spilled … b hot, adjacent across the boundary, and
                // the reverse direction.
                Query::Diff.at(Scope::Range(SnapshotId(0), SnapshotId(n - 1))),
                Query::Diff.at(Scope::Range(SnapshotId(n - 2), SnapshotId(n - 1))),
                Query::Diff.at(Scope::Range(SnapshotId(n - 1), SnapshotId(0))),
                Query::Hijacks.at(Scope::All),
            ] {
                assert_eq!(
                    rendered(&offline.engine, &req),
                    rendered(&live, &req),
                    "boundary walk diverged on {req:?}"
                );
            }
        }
    }
    let stats = live.tier_stats().unwrap();
    assert!(
        stats.hot <= 1,
        "window 1 must keep at most one hot: {stats:?}"
    );
    assert!(stats.evictions > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The rpi-sec contract survives the wire: an attack injected mid-stream
/// flows through the live path, the detection verbs answer
/// byte-identically to the offline build, and the live engine genuinely
/// convicts the injected attacker.
#[test]
fn attacked_stream_detects_identically() {
    use bgp_sim::{inject_attack, AttackKind, AttackScenario};
    use rpi_query::Response;
    use rpi_sec::RoaTable;

    const AT_STEP: usize = 2;
    const STEPS: usize = 6;

    let build = |kind: AttackKind| -> (AsGraph, Vec<String>, Vec<SimOutput>, AttackScenario) {
        for seed in 0x5EC0..0x5EC8u64 {
            let g = InternetConfig::of_size(InternetSize::Tiny)
                .with_seed(seed)
                .build();
            let truth = GroundTruth::generate(&g, &PolicyParams::default());
            let spec = VantageSpec::paper_like(&g, 8, 4);
            let cfg = ChurnConfig {
                seed,
                steps: STEPS,
                flip_prob: 0.2,
                link_failure_prob: 0.1,
                label: "atk",
            };
            let series = simulate_series(&g, &truth, &spec, &cfg);
            let mut outputs = series.snapshots;
            if let Some(sc) = inject_attack(kind, &g, &mut outputs, seed, AT_STEP) {
                return (g, series.labels, outputs, sc);
            }
        }
        panic!("no seed in the window injects a {}", kind.name());
    };

    for kind in AttackKind::ALL {
        let (g, labels, outputs, sc) = build(kind);
        let (mut w, mut bytes) = StreamWriter::open(&g);
        for (label, out) in labels.iter().zip(&outputs) {
            bytes.extend_from_slice(&w.frame(label, out, None));
        }
        bytes.extend_from_slice(&w.end());

        let dir = tmp_dir(&format!("atk-{}", kind.name()));
        let stream = dir.join("live.stream");
        std::fs::write(&stream, &bytes).unwrap();

        let (header_oracle, frames) = decode_stream(&bytes);
        let mut offline = Offline::new(&header_oracle, 4);
        for f in &frames {
            offline.ingest(f);
        }
        offline.engine.set_roas(RoaTable::new(sc.roas()));

        // The live side gets the ROAs up front, on the epoch-0 engine —
        // every published epoch shares them.
        let mut base = QueryEngine::new(4);
        base.set_roas(RoaTable::new(sc.roas()));
        let handle = LiveHandle::new(base);
        drain_stream(
            &stream,
            Arc::clone(&handle),
            &dir.join("spill"),
            LiveOptions {
                window: 2,
                keyframe_every: 2,
            },
            |_, _| {},
        )
        .expect("drain");
        let live = handle.current();

        let n = outputs.len() as u32;
        let mut vantages: Vec<Asn> = outputs[0].collector.peers.clone();
        vantages.extend(outputs[0].lgs.keys());
        let mut reqs: Vec<QueryRequest> = vec![
            Query::Hijacks.at(Scope::All),
            Query::Hijacks.at(Scope::Range(SnapshotId(AT_STEP as u32), SnapshotId(n - 1))),
        ];
        for i in 0..n {
            reqs.push(Query::Leaks.at(Scope::Id(SnapshotId(i))));
        }
        for &v in &vantages {
            for prefix in [sc.victim_prefix, sc.attack_prefix] {
                reqs.push(Query::Rov { vantage: v, prefix }.at(Scope::Latest));
                reqs.push(Query::Rov { vantage: v, prefix }.at(Scope::Id(SnapshotId(0))));
            }
        }
        for req in &reqs {
            assert_eq!(
                rendered(&offline.engine, req),
                rendered(&live, req),
                "{}: live and offline disagree on {req:?}",
                kind.name()
            );
        }

        // Conviction on the *live* engine, not just equivalence.
        match kind {
            AttackKind::PrefixHijack | AttackKind::SubprefixHijack => {
                let Ok(Response::Hijacks(events)) = live.execute(&Query::Hijacks.at(Scope::All))
                else {
                    panic!("hijacks must answer over the attacked stream");
                };
                let hit = events
                    .iter()
                    .find(|e| e.origin == sc.attacker && e.prefix == sc.attack_prefix)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: injected attacker {} on {} missing from {events:?}",
                            kind.name(),
                            sc.attacker,
                            sc.attack_prefix
                        )
                    });
                assert_eq!(hit.snapshot, SnapshotId(AT_STEP as u32));
            }
            AttackKind::RouteLeak => {
                let Ok(Response::Leaks(events)) =
                    live.execute(&Query::Leaks.at(Scope::Id(SnapshotId(AT_STEP as u32))))
                else {
                    panic!("leaks must answer at the attack step");
                };
                assert!(
                    events.iter().any(|e| e.leaker == sc.attacker),
                    "route-leak: leaker {} missing from {events:?}",
                    sc.attacker
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The concurrency stress: reader threads hammer `execute_batch` while
/// the writer publishes. Every batch must render exactly the expected
/// responses for *one* epoch (the probe set includes history walks whose
/// output provably changes with every published snapshot, so a torn
/// batch cannot masquerade as a consistent one), snapshot counts are
/// monotone per reader, and the final state equals the offline build.
#[test]
fn readers_see_one_epoch_never_torn() {
    let seed = 0x77;
    let sc = build_scenario(seed);
    let bytes = encode_stream(&sc);
    let (header_oracle, frames) = decode_stream(&bytes);
    let dir = tmp_dir("stress");

    // Probes: point queries at @latest plus history walks at @all.
    let mut probes: Vec<QueryRequest> = Vec::new();
    for &v in sc.vantages.iter().take(3) {
        let p = sc.prefixes[0];
        probes.push(
            Query::Route {
                vantage: v,
                prefix: p,
            }
            .at(Scope::Latest),
        );
        probes.push(Query::PolicySummary { asn: v }.at(Scope::Latest));
        probes.push(Query::UptimeHistogram { vantage: v }.at(Scope::All));
        probes.push(
            Query::SaHistory {
                vantage: v,
                prefix: p,
            }
            .at(Scope::All),
        );
    }
    probes.push(Query::Hijacks.at(Scope::All));
    probes.push(Query::Leaks.at(Scope::Latest));

    let render_batch = |engine: &QueryEngine| -> Vec<String> {
        engine
            .execute_batch(&probes)
            .into_iter()
            .zip(&probes)
            .map(|(res, req)| match res {
                Ok(resp) => render_response(req, &resp),
                Err(e) => format!("error: {e}"),
            })
            .collect()
    };

    // expected[k] is the probe rendering at k+1 published snapshots.
    let mut offline = Offline::new(&header_oracle, 4);
    let mut expected: Vec<Vec<String>> = Vec::new();
    for f in &frames {
        offline.ingest(f);
        expected.push(render_batch(&offline.engine));
    }
    for w in expected.windows(2) {
        assert_ne!(
            w[0], w[1],
            "the probe set must distinguish every pair of adjacent epochs"
        );
    }

    let handle = LiveHandle::new(QueryEngine::new(4));
    let done = AtomicBool::new(false);
    const READERS: usize = 4;

    std::thread::scope(|scope| {
        for r in 0..READERS {
            let handle = &handle;
            let done = &done;
            let expected = &expected;
            let render_batch = &render_batch;
            scope.spawn(move || {
                let mut last_seen = 0usize;
                let mut rounds = 0usize;
                loop {
                    let stop = done.load(Ordering::Acquire);
                    let epoch = handle.current();
                    let n = epoch.snapshot_count();
                    assert!(
                        n >= last_seen,
                        "reader {r}: snapshot count went backwards ({last_seen} -> {n})"
                    );
                    last_seen = n;
                    if n > 0 {
                        let got = render_batch(&epoch);
                        assert_eq!(
                            got,
                            expected[n - 1],
                            "reader {r}: batch mixed epochs at count {n}"
                        );
                        rounds += 1;
                    }
                    if stop && n == SNAPSHOTS {
                        break;
                    }
                }
                assert!(rounds > 0, "reader {r} never ran a batch");
            });
        }

        // The writer publishes while the readers hammer.
        let mut writer = LiveWriter::open(
            Arc::clone(&handle),
            header_oracle.clone(),
            &dir.join("spill"),
            LiveOptions {
                window: 2,
                keyframe_every: 3,
            },
        )
        .expect("open writer");
        for frame in &frames {
            writer.publish_frame(frame).expect("publish");
            std::thread::sleep(Duration::from_millis(3));
        }
        writer.end();
        done.store(true, Ordering::Release);
    });

    // Drained end state ≡ offline build.
    let live = handle.current();
    assert_eq!(live.snapshot_count(), SNAPSHOTS);
    assert_eq!(render_batch(&live), expected[SNAPSHOTS - 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tail mode: the file grows under the follower — including a partial
/// frame append that must wait, never half-apply — and every snapshot is
/// published as soon as its frame is complete.
#[test]
fn follow_publishes_as_the_file_grows() {
    let seed = 0x2F;
    let sc = build_scenario(seed);
    let (mut w, header) = StreamWriter::open(&sc.oracles[0]);
    let mut chunks: Vec<Vec<u8>> = vec![header];
    for i in 0..4 {
        let new_oracle = (sc.flip_at == Some(i)).then_some(&sc.oracles[i]);
        chunks.push(w.frame(&sc.labels[i], &sc.outputs[i], new_oracle));
    }
    chunks.push(w.end().to_vec());

    let dir = tmp_dir("follow");
    let stream = dir.join("live.stream");
    std::fs::write(&stream, &chunks[0]).unwrap();

    let handle = LiveHandle::new(QueryEngine::new(4));
    let stop = Arc::new(AtomicBool::new(false));
    let published = Arc::new(Mutex::new(Vec::<(u64, String)>::new()));
    let tail = {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        let published = Arc::clone(&published);
        let stream = stream.clone();
        let spill = dir.join("spill");
        std::thread::spawn(move || {
            follow_stream(
                &stream,
                handle,
                &spill,
                LiveOptions {
                    window: 2,
                    keyframe_every: 2,
                },
                Duration::from_millis(1),
                &stop,
                |n, label| published.lock().unwrap().push((n, label.to_string())),
            )
        })
    };

    let append = |bytes: &[u8]| {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&stream)
            .unwrap();
        f.write_all(bytes).unwrap();
        f.flush().unwrap();
    };
    let wait_published = |n: u64| {
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        while handle.published() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "follower never published snapshot {n}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    };

    // Frame 1 whole, frame 2 split mid-frame: the follower must publish
    // 1, hold at 1 (never a half-applied 2), then publish 2 when the
    // rest lands.
    append(&chunks[1]);
    wait_published(1);
    assert_eq!(handle.current().snapshot_count(), 1);
    let (a, b) = chunks[2].split_at(chunks[2].len() / 2);
    append(a);
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(
        handle.published(),
        1,
        "a partial frame must never half-apply"
    );
    append(b);
    wait_published(2);

    // The rest plus the end marker: the follower drains and returns.
    append(&chunks[3]);
    append(&chunks[4]);
    append(&chunks[5]);
    let report = tail.join().unwrap().expect("follow");
    assert_eq!(report.end, FollowEnd::EndMarker);
    assert_eq!(report.snapshots, 4);
    assert!(handle.ended());
    assert_eq!(
        published.lock().unwrap().as_slice(),
        &[
            (1, sc.labels[0].clone()),
            (2, sc.labels[1].clone()),
            (3, sc.labels[2].clone()),
            (4, sc.labels[3].clone()),
        ]
    );

    // And the followed world matches the offline one.
    let (header_oracle, frames) = {
        let bytes: Vec<u8> = chunks.concat();
        decode_stream(&bytes)
    };
    let mut offline = Offline::new(&header_oracle, 4);
    for f in &frames {
        offline.ingest(f);
    }
    let live = handle.current();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
    for _ in 0..80 {
        let req = arb_request(&mut rng, &sc, 4);
        assert_eq!(rendered(&offline.engine, &req), rendered(&live, &req));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stream that ends mid-frame is a typed [`LiveError::Truncated`]
/// naming the byte offset where the incomplete frame starts; every
/// complete frame before the cut is published, the partial one never is.
#[test]
fn truncated_stream_is_a_typed_offset_error() {
    let seed = 0x3E;
    let sc = build_scenario(seed);
    let bytes = encode_stream(&sc);
    let dir = tmp_dir("trunc");

    // Frame start offsets, from the framing itself.
    let (_, mut offset) = read_header(&bytes).unwrap().unwrap();
    let mut starts = vec![offset];
    loop {
        match next_step(&bytes, offset).unwrap() {
            StreamStep::Frame(_, next) => {
                starts.push(next);
                offset = next;
            }
            StreamStep::End(_) => break,
            StreamStep::NeedMore => panic!("complete stream"),
        }
    }

    // Cut strictly inside the third frame, and exactly at its boundary:
    // both truncations name the third frame's start offset and publish
    // exactly the two complete frames.
    let inside = starts[2] + (starts[3] - starts[2]) / 2;
    for cut in [inside, starts[2]] {
        let stream = dir.join(format!("cut-{cut}.stream"));
        std::fs::write(&stream, &bytes[..cut]).unwrap();
        let handle = LiveHandle::new(QueryEngine::new(4));
        let err = drain_stream(
            &stream,
            Arc::clone(&handle),
            &dir.join(format!("spill-{cut}")),
            LiveOptions::default(),
            |_, _| {},
        )
        .expect_err("a truncated stream must not drain cleanly");
        match &err {
            LiveError::Truncated { offset } => assert_eq!(
                *offset, starts[2],
                "the error must name the incomplete frame's start"
            ),
            other => panic!("wanted Truncated, got {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            format!("live stream ended mid-frame at byte {}", starts[2])
        );
        assert_eq!(
            handle.published(),
            2,
            "complete frames before the cut publish"
        );
        assert_eq!(handle.current().snapshot_count(), 2);
        assert!(!handle.ended());

        // The published prefix is the offline prefix, byte for byte.
        let (header_oracle, frames) = decode_stream(&bytes);
        let mut offline = Offline::new(&header_oracle, 4);
        for f in &frames[..2] {
            offline.ingest(f);
        }
        let live = handle.current();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
        for _ in 0..40 {
            let req = arb_request(&mut rng, &sc, 2);
            assert_eq!(rendered(&offline.engine, &req), rendered(&live, &req));
        }
    }

    // A cut inside the header truncates at byte 0 with nothing published.
    let stream = dir.join("cut-header.stream");
    std::fs::write(&stream, &bytes[..6]).unwrap();
    let handle = LiveHandle::new(QueryEngine::new(4));
    let err = drain_stream(
        &stream,
        Arc::clone(&handle),
        &dir.join("spill-header"),
        LiveOptions::default(),
        |_, _| {},
    )
    .expect_err("a headerless stream must not drain");
    assert!(matches!(err, LiveError::Truncated { offset: 0 }), "{err:?}");
    assert_eq!(handle.published(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The listings bugfix, over a real TCP session during publication: one
/// pipelined `snapshots` + `archive` round must describe **one** epoch —
/// the snapshot count in the tier summary equals the number of listed
/// snapshots, the archive segment count is exactly that plus the symbols
/// slot, and counts are monotone per connection. `ServerHandle::stats`
/// reads a consistent epoch too.
#[test]
fn tcp_listings_are_single_epoch_during_publication() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    use rpi_query::serve::{EngineSource, ServeConfig, Server};

    let seed = 0x4C;
    let sc = build_scenario(seed);
    let bytes = encode_stream(&sc);
    let (header_oracle, frames) = decode_stream(&bytes);
    let dir = tmp_dir("tcp");

    let handle = LiveHandle::new(QueryEngine::new(4));
    let server = Server::bind_source(
        EngineSource::Live(Arc::clone(&handle)),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr().unwrap();
    let shandle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    let writer = {
        let handle = Arc::clone(&handle);
        let oracle = header_oracle.clone();
        let spill = dir.join("spill");
        let frames = frames.clone();
        std::thread::spawn(move || {
            let mut w = LiveWriter::open(
                handle,
                oracle,
                &spill,
                LiveOptions {
                    window: 2,
                    keyframe_every: 2,
                },
            )
            .expect("open writer");
            for frame in &frames {
                w.publish_frame(frame).expect("publish");
                std::thread::sleep(Duration::from_millis(4));
            }
            w.end();
        })
    };

    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s.set_nodelay(true).unwrap();
    // One reply batch: everything between two `pong` markers.
    let read_batch = |s: &mut TcpStream| -> String {
        s.write_all(b"snapshots\narchive\nping\n").unwrap();
        let mut got = String::new();
        let mut buf = [0u8; 4096];
        while !got.ends_with("pong\n") {
            let n = s.read(&mut buf).expect("reply");
            assert!(n > 0, "server hung up mid-listing");
            got.push_str(std::str::from_utf8(&buf[..n]).unwrap());
        }
        got
    };

    let mut last_total = 0usize;
    let mut stats_queries = 0u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let got = read_batch(&mut s);
        let lines: Vec<&str> = got.lines().collect();

        // The snapshots block: `N: label (…)` rows, then the tier
        // summary (absent only at epoch 0, before the tier exists).
        let listed = lines
            .iter()
            .filter(|l| {
                l.split(':').next().is_some_and(|head| {
                    !head.is_empty() && head.bytes().all(|b| b.is_ascii_digit())
                }) && !l.starts_with("  ")
            })
            .count();
        let tier_total = lines.iter().find_map(|l| {
            let rest = l.strip_prefix("tier: ")?;
            let (hot_of_total, _) = rest.split_once(" hot")?;
            let (_, total) = hot_of_total.split_once('/')?;
            total.parse::<usize>().ok()
        });
        match tier_total {
            Some(total) => {
                assert_eq!(
                    listed, total,
                    "listing and tier summary describe different epochs:\n{got}"
                );
                // The archive block of the same batch: symbols + one
                // segment per snapshot of the *same* epoch.
                let segs = lines.iter().find_map(|l| {
                    let (_, rest) = l.split_once(" (")?;
                    let (n, _) = rest.split_once(" segments")?;
                    l.starts_with("archive ").then(|| n.parse::<usize>().ok())?
                });
                assert_eq!(
                    segs,
                    Some(total + 1),
                    "archive listing describes a different epoch:\n{got}"
                );
                assert!(
                    total >= last_total,
                    "snapshot count went backwards on one connection"
                );
                last_total = total;
            }
            None => {
                // Epoch 0: no snapshots, no tier, no archive.
                assert_eq!(listed, 0, "tier summary missing:\n{got}");
                assert!(
                    lines.iter().any(|l| l.starts_with("no archive")),
                    "epoch 0 must list no archive:\n{got}"
                );
            }
        }

        // ServeStats reads the same publication protocol: monotone, no
        // panic mid-publish.
        let stats = shandle.stats();
        assert!(stats.queries >= stats_queries);
        stats_queries = stats.queries;

        if last_total == SNAPSHOTS {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never observed the final epoch"
        );
    }

    writer.join().unwrap();
    s.write_all(b"shutdown\n").unwrap();
    let mut rest = String::new();
    let _ = s.read_to_string(&mut rest);
    let final_stats = join.join().unwrap();
    // Listings aren't grammar queries; the round trips show up as
    // accepted traffic, error-free.
    assert_eq!(final_stats.accepted, 1);
    assert_eq!(final_stats.errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
