//! Property-based tests for the wire grammar: `parse(render(req))`
//! round-trips for every query variant and scope shape, and garbage
//! never panics the parser.
//!
//! The build environment is offline, so instead of proptest these use a
//! seeded [`rand::rngs::StdRng`] driving many random cases per property —
//! deterministic across runs, same invariants checked (the harness style
//! of `bgp-types/tests/props.rs`).

use rand::prelude::*;

use bgp_types::{Asn, Ipv4Prefix};
use rpi_query::{parse, parse_script, render, Query, QueryRequest, Scope, SnapshotId};

const CASES: usize = 512;

fn arb_prefix(rng: &mut StdRng) -> Ipv4Prefix {
    Ipv4Prefix::canonical(rng.gen::<u32>(), rng.gen_range(0..=32u8))
}

fn arb_asn(rng: &mut StdRng) -> Asn {
    if rng.gen_bool(0.75) {
        Asn(rng.gen_range(1..70_000u32))
    } else {
        Asn(rng.gen_range(70_000u32..=u32::MAX))
    }
}

/// Any whitespace-free label round-trips through the explicit
/// `@label:…` form, including ones that look like other scopes.
fn arb_label(rng: &mut StdRng) -> String {
    const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-._:@";
    let len = rng.gen_range(1..=16usize);
    (0..len)
        .map(|_| *POOL.as_ref().choose(rng).unwrap() as char)
        .collect()
}

fn arb_scope(rng: &mut StdRng) -> Scope {
    match rng.gen_range(0..5u8) {
        0 => Scope::Latest,
        1 => Scope::Id(SnapshotId(rng.gen_range(0..100u32))),
        2 => Scope::Label(arb_label(rng)),
        3 => Scope::All,
        _ => {
            // Only ascending ranges are wire-representable: `@7..3` is a
            // grammar error (a reversed range is meaningful solely for
            // `diff`, whose render uses the legacy `diff 7 3` spelling —
            // covered by `reversed_diffs_roundtrip_via_legacy_spelling`).
            let a = rng.gen_range(0..100u32);
            let b = rng.gen_range(0..100u32);
            Scope::Range(SnapshotId(a.min(b)), SnapshotId(a.max(b)))
        }
    }
}

fn arb_query(rng: &mut StdRng) -> Query {
    match rng.gen_range(0..13u8) {
        0 => Query::Route {
            vantage: arb_asn(rng),
            prefix: arb_prefix(rng),
        },
        1 => Query::Resolve {
            vantage: arb_asn(rng),
            prefix: arb_prefix(rng),
        },
        2 => Query::SaStatus {
            vantage: arb_asn(rng),
            prefix: arb_prefix(rng),
        },
        3 => Query::Relationship {
            a: arb_asn(rng),
            b: arb_asn(rng),
        },
        4 => Query::PolicySummary { asn: arb_asn(rng) },
        5 => Query::Diff,
        6 => Query::SaHistory {
            vantage: arb_asn(rng),
            prefix: arb_prefix(rng),
        },
        7 => Query::UptimeHistogram {
            vantage: arb_asn(rng),
        },
        8 => Query::TopKSaOrigins {
            vantage: arb_asn(rng),
            k: rng.gen_range(0..1000usize),
        },
        9 => Query::PersistenceClass {
            vantage: arb_asn(rng),
            prefix: arb_prefix(rng),
        },
        10 => Query::Rov {
            vantage: arb_asn(rng),
            prefix: arb_prefix(rng),
        },
        11 => Query::Hijacks,
        _ => Query::Leaks,
    }
}

fn arb_request(rng: &mut StdRng) -> QueryRequest {
    arb_query(rng).at(arb_scope(rng))
}

/// A mildly adversarial random string over the grammar's alphabet.
fn arb_garbage(rng: &mut StdRng, max_len: usize) -> String {
    const POOL: &[u8] = b"0123456789./ ,:;-_abcXYZ{}()<>!?*\t\"'@AS";
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| *POOL.as_ref().choose(rng).unwrap() as char)
        .collect()
}

#[test]
fn render_parse_roundtrips_every_variant() {
    let mut rng = StdRng::seed_from_u64(0x6001);
    let mut seen = [false; 13];
    for _ in 0..CASES {
        let req = arb_request(&mut rng);
        seen[match req.query {
            Query::Route { .. } => 0,
            Query::Resolve { .. } => 1,
            Query::SaStatus { .. } => 2,
            Query::Relationship { .. } => 3,
            Query::PolicySummary { .. } => 4,
            Query::Diff => 5,
            Query::SaHistory { .. } => 6,
            Query::UptimeHistogram { .. } => 7,
            Query::TopKSaOrigins { .. } => 8,
            Query::PersistenceClass { .. } => 9,
            Query::Rov { .. } => 10,
            Query::Hijacks => 11,
            Query::Leaks => 12,
        }] = true;
        let line = render(&req);
        let back =
            parse(&line).unwrap_or_else(|e| panic!("rendered line must parse: '{line}' → {e}"));
        assert_eq!(back, req, "round trip through '{line}'");
    }
    assert!(seen.iter().all(|&s| s), "generator covered every variant");
}

#[test]
fn render_is_a_fixed_point_of_parse() {
    let mut rng = StdRng::seed_from_u64(0x6002);
    for _ in 0..CASES {
        let req = arb_request(&mut rng);
        let line = render(&req);
        assert_eq!(render(&parse(&line).unwrap()), line);
    }
}

#[test]
fn default_scopes_match_query_class() {
    let mut rng = StdRng::seed_from_u64(0x6003);
    for _ in 0..CASES {
        let query = arb_query(&mut rng);
        if query == Query::Diff {
            continue; // diff has no default scope
        }
        // Strip the scope token off the canonical line and re-parse.
        let line = render(&query.clone().with_default_scope());
        let bare = line
            .rsplit_once(" @")
            .expect("canonical lines end in a scope token")
            .0;
        let req = parse(bare).unwrap();
        assert_eq!(req.query, query);
        assert_eq!(
            req.scope,
            if query.is_history() {
                Scope::All
            } else {
                Scope::Latest
            },
            "default scope for '{bare}'"
        );
    }
}

#[test]
fn reversed_diffs_roundtrip_via_legacy_spelling() {
    let mut rng = StdRng::seed_from_u64(0x6006);
    for _ in 0..CASES {
        let a = rng.gen_range(0..100u32);
        let b = rng.gen_range(0..100u32);
        let req = Query::Diff.at(Scope::Range(SnapshotId(a), SnapshotId(b)));
        let line = render(&req);
        assert_eq!(parse(&line).unwrap(), req, "round trip through '{line}'");
        if a > b {
            assert_eq!(
                line,
                format!("diff {a} {b}"),
                "reverse diffs use the legacy spelling"
            );
        }
    }
}

#[test]
fn reversed_ranges_never_parse_on_history_or_point_queries() {
    let mut rng = StdRng::seed_from_u64(0x6007);
    for _ in 0..CASES {
        let query = arb_query(&mut rng);
        if query == Query::Diff {
            continue;
        }
        let a = rng.gen_range(1..100u32);
        let b = rng.gen_range(0..a);
        let req = query.at(Scope::Range(SnapshotId(a), SnapshotId(b)));
        let line = render(&req);
        let err = parse(&line).expect_err("reversed ranges are grammar errors");
        assert!(
            err.to_string().contains("runs backwards"),
            "'{line}' → {err}"
        );
    }
}

#[test]
fn parser_never_panics_on_garbage() {
    let mut rng = StdRng::seed_from_u64(0x6004);
    for _ in 0..CASES {
        let s = arb_garbage(&mut rng, 60);
        let _ = parse(&s);
    }
}

#[test]
fn scripts_report_the_right_line() {
    let mut rng = StdRng::seed_from_u64(0x6005);
    for _ in 0..64 {
        // A script of valid rendered lines with one garbage line spliced in.
        let n = rng.gen_range(1..8usize);
        let mut lines: Vec<String> = (0..n).map(|_| render(&arb_request(&mut rng))).collect();
        let bad_at = rng.gen_range(0..=lines.len());
        lines.insert(bad_at, "definitely-not-a-query x y".into());
        let text = lines.join("\n");
        let err = parse_script(&text).expect_err("script contains a bad line");
        assert_eq!(err.line, bad_at + 1, "in script:\n{text}");
    }
}
