//! The archive correctness contract, enforced differentially: an engine
//! cold-started from disk must be **query-for-query byte-identical** to
//! the engine that was saved — across every protocol verb, every scope
//! shape, errors included — and a damaged archive must fail loudly with
//! a typed error naming the segment, never panic and never yield a
//! half-loaded world.
//!
//! The scenario harness mirrors `incremental_diff.rs`: seeded churn
//! series (policy flips, flaps, vantage loss, mid-series oracle flips)
//! drive diverse archives — mixes of delta and full segments — and a
//! seeded query fuzzer compares rendered responses byte for byte.

use rand::prelude::*;
use rand::rngs::StdRng;

use bgp_sim::churn::simulate_series;
use bgp_sim::{ChurnConfig, GroundTruth, PolicyParams, SimOutput, VantageSpec};
use bgp_types::{Asn, Ipv4Prefix, Relationship};
use net_topology::{AsGraph, InternetConfig, InternetSize};
use rpi_query::{render_response, Query, QueryEngine, QueryRequest, Scope, SnapshotId};
use rpi_sec::{Roa, RoaTable};
use rpi_store::{Manifest, SegmentKind, StoreError, FORMAT_VERSION, MANIFEST_FILE};

const SNAPSHOTS: usize = 6;
const QUERIES: usize = 300;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rpi-archive-test-{tag}-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One churn scenario: outputs, per-snapshot oracles, query universes.
struct Scenario {
    labels: Vec<String>,
    outputs: Vec<SimOutput>,
    oracles: Vec<AsGraph>,
    vantages: Vec<Asn>,
    prefixes: Vec<Ipv4Prefix>,
}

fn build_scenario(seed: u64, flip_oracle: bool) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA2C4_117E);
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(seed)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    let cfg = ChurnConfig {
        seed,
        steps: SNAPSHOTS,
        flip_prob: rng.gen_range(0.1..0.6),
        link_failure_prob: rng.gen_range(0.05..0.4),
        label: "ar",
    };
    let series = simulate_series(&g, &truth, &spec, &cfg);
    let labels = series.labels;
    let mut outputs = series.snapshots;

    // Vantage loss mid-series: one LG and one collector peer vanish.
    let lg_pool: Vec<Asn> = outputs[0].lgs.keys().copied().collect();
    if let Some(&lg) = lg_pool.choose(&mut rng) {
        let from = rng.gen_range(1..SNAPSHOTS);
        for out in &mut outputs[from..] {
            out.lgs.remove(&lg);
        }
    }
    if let Some(&peer) = outputs[0].collector.peers.clone().choose(&mut rng) {
        let from = rng.gen_range(1..SNAPSHOTS);
        for out in &mut outputs[from..] {
            out.collector.peers.retain(|&p| p != peer);
            for rows in out.collector.rows.values_mut() {
                rows.retain(|r| r.peer != peer);
            }
            out.collector.rows.retain(|_, rows| !rows.is_empty());
        }
    }

    // Optional mid-series relationship flip: forces a full segment in
    // the middle of a delta run.
    let mut oracles = vec![g.clone(); outputs.len()];
    if flip_oracle {
        let mut edges = Vec::new();
        for a in g.ases() {
            for (b, rel) in g.neighbors(a) {
                edges.push((a, b, rel));
                if edges.len() >= 64 {
                    break;
                }
            }
        }
        if let Some(&(a, b, rel)) = edges.as_slice().choose(&mut rng) {
            let mut flipped = g.clone();
            flipped.remove_edge(a, b);
            let new_rel = match rel {
                Relationship::Customer | Relationship::Provider => Relationship::Peer,
                _ => Relationship::Customer,
            };
            let _ = flipped.add_edge(a, b, new_rel);
            let from = rng.gen_range(1..outputs.len());
            for o in &mut oracles[from..] {
                *o = flipped.clone();
            }
        }
    }

    let mut vantages: Vec<Asn> = spec.collector_peers.clone();
    vantages.extend(&spec.lg_ases);
    vantages.push(Asn(65_500)); // never a vantage
    vantages.dedup();
    let mut prefixes: Vec<Ipv4Prefix> = outputs
        .iter()
        .flat_map(|o| o.collector.rows.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    prefixes.push("203.0.113.0/24".parse().unwrap());
    prefixes.push("0.0.0.0/0".parse().unwrap());

    Scenario {
        labels,
        outputs,
        oracles,
        vantages,
        prefixes,
    }
}

/// Seeded ROAs over the scenario's own prefixes — mixed max-lengths,
/// some origins real and some bogus, so the fuzzer's `rov` requests hit
/// every validity state on both ends of the round trip.
fn scenario_roas(sc: &Scenario, seed: u64) -> RoaTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x40A5_0A75);
    let roas = sc
        .prefixes
        .iter()
        .filter(|p| p.len() > 0)
        .take(8)
        .map(|&prefix| Roa {
            prefix,
            max_len: (prefix.len() + rng.gen_range(0..4u8)).min(32),
            origin: if rng.gen_bool(0.5) {
                *sc.vantages.choose(&mut rng).unwrap()
            } else {
                Asn(64_496 + rng.gen_range(0..4u32))
            },
        })
        .collect();
    RoaTable::new(roas)
}

/// Incremental ingest under the scenario's per-snapshot oracles.
fn ingest(sc: &Scenario, shards: usize) -> QueryEngine {
    let mut e = QueryEngine::new(shards);
    for (i, (label, out)) in sc.labels.iter().zip(&sc.outputs).enumerate() {
        if i == 0 {
            e.ingest_output(out, &sc.oracles[i], label);
        } else {
            e.ingest_output_incremental(&sc.outputs[i - 1], out, &sc.oracles[i], label);
        }
    }
    e
}

fn arb_point_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..4u8) {
        0 => Scope::Latest,
        1 => Scope::Id(SnapshotId(rng.gen_range(0..n as u32))),
        2 => Scope::Id(SnapshotId(n as u32 + 3)),
        _ => Scope::All,
    }
}

fn arb_history_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..3u8) {
        0 => Scope::All,
        1 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(a..n as u32);
            Scope::Range(SnapshotId(a), SnapshotId(b))
        }
        _ => Scope::Latest,
    }
}

/// Every protocol verb, random scopes — the byte-equivalence surface.
fn arb_request(rng: &mut StdRng, sc: &Scenario, n: usize) -> QueryRequest {
    let vantage = *sc.vantages.choose(rng).unwrap();
    let prefix = *sc.prefixes.choose(rng).unwrap();
    match rng.gen_range(0..13u8) {
        0 => Query::Route { vantage, prefix }.at(arb_point_scope(rng, n)),
        1 => Query::Resolve { vantage, prefix }.at(arb_point_scope(rng, n)),
        2 => Query::SaStatus { vantage, prefix }.at(arb_point_scope(rng, n)),
        3 => {
            let b = *sc.vantages.choose(rng).unwrap();
            Query::Relationship { a: vantage, b }.at(arb_point_scope(rng, n))
        }
        4 => Query::PolicySummary { asn: vantage }.at(arb_point_scope(rng, n)),
        5 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            Query::Diff.at(Scope::Range(SnapshotId(a), SnapshotId(b)))
        }
        6 => Query::SaHistory { vantage, prefix }.at(arb_history_scope(rng, n)),
        7 => Query::UptimeHistogram { vantage }.at(arb_history_scope(rng, n)),
        8 => Query::TopKSaOrigins {
            vantage,
            k: rng.gen_range(0..6usize),
        }
        .at(arb_history_scope(rng, n)),
        9 => Query::PersistenceClass { vantage, prefix }.at(arb_history_scope(rng, n)),
        // The security verbs answer from the loaded roa segment (or its
        // absence) — part of the byte-equivalence surface like any verb.
        10 => Query::Rov { vantage, prefix }.at(arb_point_scope(rng, n)),
        11 => Query::Hijacks.at(arb_history_scope(rng, n)),
        _ => Query::Leaks.at(arb_point_scope(rng, n)),
    }
}

fn rendered(engine: &QueryEngine, req: &QueryRequest) -> String {
    match engine.execute(req) {
        Ok(resp) => render_response(req, &resp),
        Err(e) => format!("error: {e}"),
    }
}

/// Save → load → every rendered response byte-identical.
fn assert_round_trip(seed: u64, saved: &mut QueryEngine, sc: &Scenario, tag: &str) -> Manifest {
    let dir = tmp_dir(tag);
    let manifest = saved.save_archive(&dir, false).expect("save");
    let loaded = QueryEngine::load_archive(&dir).expect("load");

    assert_eq!(saved.snapshot_count(), loaded.snapshot_count());
    assert_eq!(saved.labels(), loaded.labels());
    assert_eq!(saved.interned_sizes(), loaded.interned_sizes());
    assert_eq!(saved.shard_count(), loaded.shard_count());
    assert_eq!(
        saved.roa_table(),
        loaded.roa_table(),
        "seed {seed}: the ROA table must survive the round trip"
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0AAC_417E);
    let n = saved.snapshot_count();
    let mut answered = 0usize;
    for i in 0..QUERIES {
        let req = arb_request(&mut rng, sc, n);
        let a = rendered(saved, &req);
        let b = rendered(&loaded, &req);
        assert_eq!(
            a, b,
            "seed {seed}, query {i}: archive round trip diverged on {req:?}"
        );
        if !a.starts_with("error:") {
            answered += 1;
        }
    }
    assert!(
        answered > QUERIES / 2,
        "seed {seed}: degenerate scenario, only {answered}/{QUERIES} answered"
    );

    // Storage metadata is visible on both ends of the round trip.
    for engine in [&*saved, &loaded] {
        let info = engine.archive_info().expect("archive info");
        assert_eq!(info.snapshots.len(), n);
        assert!(engine.sharing_stats().disk_bytes > 0);
        for i in 0..n {
            let meta = engine.segment_meta(SnapshotId(i as u32)).expect("meta");
            assert!(meta.bytes > 0);
            assert_eq!(meta.label, saved.labels()[i]);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    manifest
}

fn run_differential(seed: u64, flip_oracle: bool, tag: &str) {
    let sc = build_scenario(seed, flip_oracle);
    let route_events: usize = sc
        .outputs
        .windows(2)
        .map(|w| bgp_sim::output_delta(&w[0], &w[1]).route_events())
        .sum();
    assert!(route_events > 0, "seed {seed}: degenerate scenario");

    let mut engine = ingest(&sc, 4);
    engine.set_roas(scenario_roas(&sc, seed));
    let manifest = assert_round_trip(seed, &mut engine, &sc, tag);
    assert_eq!(
        manifest
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Roa)
            .count(),
        1,
        "seed {seed}: an engine with ROAs writes exactly one roa segment"
    );

    // A churny incremental series must actually exercise delta segments.
    let deltas = manifest
        .segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Delta)
        .count();
    assert!(deltas > 0, "seed {seed}: no delta segment was written");
    if flip_oracle {
        // The flip forces at least one mid-series full segment (plus the
        // first snapshot, which is always full).
        let fulls = manifest
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Full)
            .count();
        assert!(
            fulls >= 2,
            "seed {seed}: oracle flip must force a full segment"
        );
    }
}

#[test]
fn differential_seed_0xd1() {
    run_differential(0xD1, false, "d1");
}

#[test]
fn differential_seed_0xe2() {
    run_differential(0xE2, false, "e2");
}

#[test]
fn differential_seed_0xf3_with_oracle_flip() {
    run_differential(0xF3, true, "f3");
}

/// Extra seeds without a rebuild: `RPI_ARCHIVE_SEEDS=7,8 cargo test …`.
#[test]
fn differential_extra_seeds_from_env() {
    let Ok(spec) = std::env::var("RPI_ARCHIVE_SEEDS") else {
        return;
    };
    for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = part
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad seed '{part}' in RPI_ARCHIVE_SEEDS"));
        run_differential(seed, seed % 2 == 1, "env");
    }
}

/// A from-scratch (non-incremental) series has no retained deltas:
/// every snapshot serializes full, and still round-trips byte-identically.
#[test]
fn full_ingest_series_round_trips_as_full_segments() {
    let sc = build_scenario(0x5F, false);
    let mut engine = QueryEngine::new(4);
    for (i, (label, out)) in sc.labels.iter().zip(&sc.outputs).enumerate() {
        engine.ingest_output(out, &sc.oracles[i], label);
    }
    let manifest = assert_round_trip(0x5F, &mut engine, &sc, "full");
    assert!(manifest
        .segments
        .iter()
        .all(|s| s.kind != SegmentKind::Delta));
}

/// Loading a delta-bearing archive preserves the series' physical trie
/// sharing — the loaded engine is as compact as the live one was.
#[test]
fn loaded_delta_archive_preserves_cow_sharing() {
    let sc = build_scenario(0xC0, false);
    let mut engine = ingest(&sc, 4);
    let live = engine.sharing_stats();
    assert!(live.shared_nodes > 0);

    let dir = tmp_dir("sharing");
    engine.save_archive(&dir, false).expect("save");
    let loaded = QueryEngine::load_archive(&dir).expect("load");
    let stats = loaded.sharing_stats();
    assert!(
        stats.shared_nodes > 0,
        "replayed delta segments must share trie nodes: {stats:?}"
    );
    assert_eq!(
        stats.disk_bytes,
        loaded.archive_info().unwrap().total_bytes()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A loaded engine can keep ingesting and be re-saved; the second
/// archive round-trips too (loaded snapshots keep their provenance).
#[test]
fn loaded_engine_resaves_equivalently() {
    let sc = build_scenario(0xAB, false);
    let mut engine = ingest(&sc, 4);
    engine.set_roas(scenario_roas(&sc, 0xAB));
    let dir = tmp_dir("resave");
    let first = engine.save_archive(&dir, false).expect("save");
    let mut loaded = QueryEngine::load_archive(&dir).expect("load");

    let dir2 = tmp_dir("resave2");
    let second = loaded.save_archive(&dir2, false).expect("re-save");
    // Same segment kinds and byte-identical payload sizes: the loaded
    // engine reconstructed the exact serializable state.
    assert_eq!(
        first
            .segments
            .iter()
            .map(|s| (s.kind, s.bytes, s.crc32))
            .collect::<Vec<_>>(),
        second
            .segments
            .iter()
            .map(|s| (s.kind, s.bytes, s.crc32))
            .collect::<Vec<_>>(),
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// The ROA table rides its own checksummed segment: a cold-started
/// engine validates identically to the one that was saved, and an
/// engine without ROAs writes no roa segment at all (its archive shape
/// is unchanged from the pre-sec format).
#[test]
fn roa_segment_round_trips_and_is_optional() {
    let sc = build_scenario(0x4A, false);
    let mut engine = ingest(&sc, 4);
    engine.set_roas(scenario_roas(&sc, 0x4A));
    assert!(!engine.roa_table().is_empty(), "scenario yields ROAs");

    let dir = tmp_dir("roa");
    let manifest = engine.save_archive(&dir, false).expect("save");
    let roa_entries: Vec<_> = manifest
        .segments
        .iter()
        .filter(|s| s.kind == SegmentKind::Roa)
        .collect();
    assert_eq!(roa_entries.len(), 1);
    assert!(roa_entries[0].bytes > 0);

    let loaded = QueryEngine::load_archive(&dir).expect("load");
    assert_eq!(engine.roa_table(), loaded.roa_table());
    let n = engine.snapshot_count() as u32;
    for &vantage in &sc.vantages {
        for &prefix in &sc.prefixes {
            for scope in [Scope::Latest, Scope::Id(SnapshotId(n - 1))] {
                let req = Query::Rov { vantage, prefix }.at(scope);
                assert_eq!(
                    rendered(&engine, &req),
                    rendered(&loaded, &req),
                    "rov diverged after cold start on {req:?}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut bare = ingest(&sc, 4);
    let dir2 = tmp_dir("roa-none");
    let m2 = bare.save_archive(&dir2, false).expect("save");
    assert!(m2.segments.iter().all(|s| s.kind != SegmentKind::Roa));
    let loaded = QueryEngine::load_archive(&dir2).expect("load");
    assert!(loaded.roa_table().is_empty());
    let _ = std::fs::remove_dir_all(&dir2);
}

// ---------------------------------------------------------------------------
// corruption: typed errors, no panics, no half-worlds
// ---------------------------------------------------------------------------

fn saved_archive(tag: &str) -> (std::path::PathBuf, Manifest) {
    let sc = build_scenario(0x77, false);
    let mut engine = ingest(&sc, 4);
    // ROAs included, so the corruption sweeps below cover the roa
    // segment alongside symbols and snapshots.
    engine.set_roas(scenario_roas(&sc, 0x77));
    let dir = tmp_dir(tag);
    let manifest = engine.save_archive(&dir, false).expect("save");
    (dir, manifest)
}

#[test]
fn missing_directory_is_not_an_archive() {
    let dir = tmp_dir("missing");
    match QueryEngine::load_archive(&dir) {
        Err(StoreError::NotAnArchive { path }) => assert_eq!(path, dir),
        other => panic!("wanted NotAnArchive, got {other:?}"),
    }
}

#[test]
fn empty_directory_is_not_an_archive() {
    let dir = tmp_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(matches!(
        QueryEngine::load_archive(&dir),
        Err(StoreError::NotAnArchive { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_refuses_overwrite_without_force() {
    let (dir, _) = saved_archive("force");
    let sc = build_scenario(0x78, false);
    let mut other = ingest(&sc, 4);
    assert!(matches!(
        other.save_archive(&dir, false),
        Err(StoreError::AlreadyExists { .. })
    ));
    other.save_archive(&dir, true).expect("force overwrite");
    QueryEngine::load_archive(&dir).expect("overwritten archive loads");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `--force` overwrite replaces the archive wholesale: segments of a
/// longer predecessor must not survive as orphans, and the directory
/// must hold exactly what the manifest lists.
#[test]
fn force_save_leaves_no_orphan_segments() {
    let (dir, first) = saved_archive("orphans");
    assert!(first.segments.len() > 3, "need a multi-snapshot archive");

    // A much shorter engine saved over it.
    let sc = build_scenario(0x79, false);
    let mut short = QueryEngine::new(4);
    short.ingest_output(&sc.outputs[0], &sc.oracles[0], &sc.labels[0]);
    let manifest = short.save_archive(&dir, true).expect("force save");
    assert_eq!(manifest.segments.len(), 2); // symbols + one snapshot

    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = manifest.segments.iter().map(|s| s.file.clone()).collect();
    expected.push(MANIFEST_FILE.to_string());
    expected.sort();
    assert_eq!(on_disk, expected, "stale segments must be swept");

    let loaded = QueryEngine::load_archive(&dir).expect("load");
    assert_eq!(loaded.snapshot_count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Saving into a pre-created (empty) directory works, and unrelated
/// files already in a non-archive target directory survive the save.
#[test]
fn save_into_existing_directory_keeps_unrelated_files() {
    let dir = tmp_dir("precreated");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("NOTES.txt"), "not part of the archive").unwrap();

    let sc = build_scenario(0x7A, false);
    let mut engine = ingest(&sc, 4);
    engine.save_archive(&dir, false).expect("save");
    assert_eq!(
        std::fs::read_to_string(dir.join("NOTES.txt")).unwrap(),
        "not part of the archive"
    );
    QueryEngine::load_archive(&dir).expect("load");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segment_fails_with_segment_index() {
    let (dir, manifest) = saved_archive("trunc");
    // Truncate the *last* snapshot segment (often a delta).
    let (idx, entry) = manifest
        .segments
        .iter()
        .enumerate()
        .next_back()
        .expect("segments exist");
    let path = dir.join(&entry.file);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    match QueryEngine::load_archive(&dir) {
        Err(StoreError::Truncated {
            segment,
            expected,
            found,
        }) => {
            assert_eq!(segment.index, idx);
            assert_eq!(segment.file, entry.file);
            assert_eq!(expected, entry.bytes);
            assert_eq!(found, (bytes.len() / 2) as u64);
        }
        other => panic!("wanted Truncated, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_fails_checksum_under_the_right_segment() {
    let (dir, manifest) = saved_archive("flip");
    for (idx, entry) in manifest.segments.iter().enumerate() {
        let path = dir.join(&entry.file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        match QueryEngine::load_archive(&dir) {
            Err(StoreError::Checksum { segment, .. }) => {
                assert_eq!(segment.index, idx, "wrong segment blamed");
                assert_eq!(segment.file, entry.file);
            }
            other => panic!("segment {idx}: wanted Checksum, got {other:?}"),
        }
        bytes[mid] ^= 0x20; // restore for the next iteration
        std::fs::write(&path, &bytes).unwrap();
    }
    // Fully restored: loads again.
    QueryEngine::load_archive(&dir).expect("restored archive loads");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_manifest_version_is_typed() {
    let (dir, manifest) = saved_archive("version");
    let mut stale = manifest.clone();
    stale.version = FORMAT_VERSION + 9;
    std::fs::write(dir.join(MANIFEST_FILE), stale.to_bytes()).unwrap();
    match QueryEngine::load_archive(&dir) {
        Err(StoreError::Version { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 9);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("wanted Version, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_manifest_is_bad_magic() {
    let dir = tmp_dir("magic");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(MANIFEST_FILE), b"definitely not an archive").unwrap();
    assert!(matches!(
        QueryEngine::load_archive(&dir),
        Err(StoreError::BadMagic { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checksum-valid but structurally damaged payloads (a dangling symbol)
/// must fail as `Corrupt` with the segment named — this requires
/// re-checksumming the tampered bytes so the CRC gate passes.
#[test]
fn semantic_corruption_is_caught_after_checksum() {
    let (dir, manifest) = saved_archive("semantic");
    // The symbols segment: claim 255 extra blocks.
    let entry = &manifest.segments[0];
    let path = dir.join(&entry.file);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = 0xFF; // block count varint (small counts are one byte)
    std::fs::write(&path, &bytes).unwrap();
    let mut fixed = manifest.clone();
    fixed.segments[0].crc32 = rpi_store::crc32(&bytes);
    fixed.segments[0].bytes = bytes.len() as u64;
    fixed.write(&dir, true).unwrap();
    match QueryEngine::load_archive(&dir) {
        Err(StoreError::Corrupt { segment, .. }) => assert_eq!(segment.index, 0),
        Err(StoreError::ManifestCorrupt { .. }) => {}
        other => panic!("wanted Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same gate for the roa segment: a checksum-valid payload whose ROA
/// count overruns the data must fail as `Corrupt` naming that segment —
/// never a partially applied ROA table.
#[test]
fn roa_semantic_corruption_names_the_segment() {
    let (dir, manifest) = saved_archive("roa-sem");
    let (idx, entry) = manifest
        .segments
        .iter()
        .enumerate()
        .find(|(_, s)| s.kind == SegmentKind::Roa)
        .expect("saved_archive includes a roa segment");
    let path = dir.join(&entry.file);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = 0x7F; // ROA count claims more entries than the payload holds
    std::fs::write(&path, &bytes).unwrap();
    let mut fixed = manifest.clone();
    fixed.segments[idx].crc32 = rpi_store::crc32(&bytes);
    fixed.segments[idx].bytes = bytes.len() as u64;
    fixed.write(&dir, true).unwrap();
    match QueryEngine::load_archive(&dir) {
        Err(StoreError::Corrupt { segment, .. }) => assert_eq!(segment.index, idx),
        other => panic!("wanted Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
