# rpi-store archive smoke: the tiny seed-11 world, 5 daily snapshots ingested
# incrementally, saved with `--save /tmp/rpi-archive`, then cold-started with
# `--archive /tmp/rpi-archive` and piped through this file. CI diffs the
# output against the committed golden: any drift in the on-disk format, the
# segment replay path, or the storage listings fails the build.

snapshots
archive

route AS1 4.0.0.0/13
route AS1 4.0.0.0/13 @0
resolve AS1 4.0.0.1/32
sa AS1 4.0.0.0/13
sa AS1 2.0.0.0/8 @label:day-02
rel AS1 AS701
summary AS1
diff @0..4
sa-history AS1 4.0.0.0/13
uptime AS1
top-sa AS1 3
persistence AS1 4.0.0.0/13 @all
persistence AS1 2.0.0.0/8 @1..3

# rpi-sec: the cold-started engine answers these from the archive's own
# roa segment — the save was given --roas, this run was not.
rov AS1 4.0.0.0/13
rov AS1 3.0.0.0/14
rov AS1 2.0.0.0/12
rov AS1 2.0.0.0/8
hijacks
leaks

# rpi-obs: the metrics schema is part of the wire contract — value-free, so
# the golden pins the exact family set without pinning nondeterministic values.
metrics names
