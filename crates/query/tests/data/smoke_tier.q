# rpi-tier smoke: the tiny seed-11 world, 200 daily snapshots ingested
# incrementally and saved with `--save /tmp/rpi-tier --keyframe-every 16`,
# then attached with `--archive /tmp/rpi-tier --hot-cap 4` and piped through
# this file. CI diffs the output against the committed golden — and drives
# the same script over TCP — so every answer below is pinned byte-identical
# whether the snapshot it touches is hot, cold, or hydrated mid-query.
#
# The listings run first, while the tier is untouched: 200 snapshots all
# cold, zero hydrations, and the archive's keyframe/chain structure. Later
# lines mix zero-copy cold point queries with verbs that hydrate through
# the LRU (cap 4, far below 200) — their rendered answers carry no
# residency state, which is exactly the contract.

snapshots
archive

# Zero-copy off the cold mappings: exact route, resolve, rov at explicit
# snapshot ids across the whole archive (keyframes sit at 0, 16, 32, …).
route AS1 4.0.0.0/13
route AS1 4.0.0.0/13 @0
route AS1 4.0.0.0/13 @96
resolve AS1 4.0.0.1/32
resolve AS1 4.0.0.1/32 @160
rov AS1 4.0.0.0/13
rov AS1 3.0.0.0/14 @32
rov AS1 2.0.0.0/12 @64
rov AS1 2.0.0.0/8 @128

# Hydrating verbs: delta-chain replay from the nearest keyframe, bounded
# by --keyframe-every 16, evicting LRU past --hot-cap 4.
sa AS1 4.0.0.0/13
sa AS1 2.0.0.0/8 @17
rel AS1 AS701 @50
summary AS1 @199
summary AS1 @3
diff @0..199

# History walks spanning hot and cold snapshots.
sa-history AS1 4.0.0.0/13 @190..199
uptime AS1 @0..24
top-sa AS1 3 @90..110
persistence AS1 4.0.0.0/13 @0..9
hijacks @100..104
leaks @199

# Back to the cold path: these ids were hydrated and evicted above; the
# answers must not care.
route AS1 4.0.0.0/13 @16
rov AS1 4.0.0.0/13 @48
