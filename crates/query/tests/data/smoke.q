# rpi-query protocol smoke: tiny seed-11 world, 4 daily snapshots, 4 shards.
# Exercises every grammar verb plus the REPL listing commands; CI pipes
# this file through `rpi-queryd --queries` and diffs the golden output.

snapshots
vantages

route AS1 4.0.0.0/13
route AS1 4.0.0.0/13 @0
resolve AS1 4.0.0.1/32
sa AS1 4.0.0.0/13
sa AS1 2.0.0.0/8 @label:day-02
rel AS1 AS701
summary AS1
diff @0..3
sa-history AS1 4.0.0.0/13
uptime AS1
top-sa AS1 3
persistence AS1 4.0.0.0/13 @all
persistence AS1 2.0.0.0/8 @1..3

# rpi-sec: route-origin validation against tests/data/smoke.roas, plus
# the hijack / leak detectors (benign world: zero events is the answer).
rov AS1 4.0.0.0/13
rov AS1 4.0.0.0/13 @0
rov AS1 3.0.0.0/14
rov AS1 2.0.0.0/12
rov AS1 2.0.0.0/8
rov AS1 1.0.0.0/8
rov AS42424 4.0.0.0/13
hijacks
hijacks @0..2
leaks
leaks @0
