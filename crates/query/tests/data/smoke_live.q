# rpi-query live smoke: the tiny seed-11 world written as a delta-event
# stream by `rpi-queryd --emit-deltas` and tailed by `rpi-queryd --follow`
# while CI drives this script over TCP MID-INGEST. Every query pins an
# explicit @scope over snapshots 0..2 — epoch publication freezes those
# answers the moment snapshot 3 is published, so the golden holds no
# matter how far past them the writer has advanced by the time each
# line is answered.

route AS1 4.0.0.0/13 @0
route AS1 4.0.0.0/13 @2
resolve AS1 4.0.0.1/32 @1
sa AS1 4.0.0.0/13 @2
sa AS1 2.0.0.0/8 @label:day-02
rel AS1 AS701 @0
summary AS1 @1
diff @0..2
# Deliberate error: pins the reversed-range diagnostic over TCP.
diff @2..0
sa-history AS1 4.0.0.0/13 @0..2
uptime AS1 @0..2
top-sa AS1 3 @0..2
persistence AS1 4.0.0.0/13 @0..2
persistence AS1 2.0.0.0/8 @1..2

# rpi-sec over the pinned prefix: ROV against tests/data/smoke.roas and
# the detectors (benign stream: zero events is the answer).
rov AS1 4.0.0.0/13 @0
rov AS1 3.0.0.0/14 @2
rov AS42424 4.0.0.0/13 @1
hijacks @0..2
leaks @1

# rpi-obs: the schema is identical in live mode — every family is registered
# up front, never lazily on first traffic.
metrics names
