//! Integration tests of the TCP front end (`rpi_query::serve`): framing
//! across split writes, per-read pipelining, in-band error handling,
//! read-side backpressure, idle shedding, and — the property everything
//! else rests on — responses byte-identical to direct `engine.execute`.
//!
//! Every scenario runs over the full backend × serve-thread matrix
//! ([`matrix`]): the portable sweep poller and the epoll poller (where
//! supported), single-threaded and sharded across 4 event-loop threads.
//! The responses must be byte-identical in every cell.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use net_topology::InternetSize;
use rpi_core::Experiment;
use rpi_query::serve::session::{repl_reply, ReplCmd};
use rpi_query::serve::{PollBackend, ServeConfig, ServeStats, Server, ServerHandle};
use rpi_query::{parse, render_response, QueryEngine};

/// A tiny single-snapshot engine plus its experiment (for valid
/// vantage/prefix pairs).
fn tiny_engine() -> (Arc<QueryEngine>, Experiment) {
    let exp = Experiment::standard(InternetSize::Tiny, 11);
    let mut engine = QueryEngine::new(4);
    engine.ingest_experiment(&exp, "t0");
    (Arc::new(engine), exp)
}

/// Valid `(vantage, prefix)` pairs, textual, for building query lines.
fn query_pairs(engine: &QueryEngine, exp: &Experiment) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (vantage, _) in engine.vantages() {
        let rows: Vec<_> = match exp.lg_table(vantage) {
            Some(t) => t.rows.keys().copied().collect(),
            None => exp.collector_table(vantage).rows.keys().copied().collect(),
        };
        for p in rows {
            out.push((vantage.to_string(), p.to_string()));
        }
    }
    assert!(!out.is_empty(), "tiny world has routes");
    out
}

/// The backend × serve-threads cells every scenario sweeps. Epoll cells
/// appear only where the platform supports the backend (everywhere CI
/// runs; the sweep-only fallback keeps the suite green elsewhere).
fn matrix() -> Vec<(PollBackend, usize)> {
    let mut cells = vec![(PollBackend::Sweep, 1)];
    if PollBackend::Epoll.supported() {
        cells.push((PollBackend::Epoll, 1));
    }
    cells.push((PollBackend::Sweep, 4));
    if PollBackend::Epoll.supported() {
        cells.push((PollBackend::Epoll, 4));
    }
    cells
}

/// Just the backends (for scenarios whose property is per-connection
/// and thread-count-independent, like the heavy backpressure run).
fn backends() -> Vec<PollBackend> {
    let mut b = vec![PollBackend::Sweep];
    if PollBackend::Epoll.supported() {
        b.push(PollBackend::Epoll);
    }
    b
}

fn cell_cfg(backend: PollBackend, threads: usize, base: ServeConfig) -> ServeConfig {
    ServeConfig {
        backend,
        serve_threads: threads,
        ..base
    }
}

fn spawn_server(
    engine: Arc<QueryEngine>,
    cfg: ServeConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<ServeStats>,
) {
    let server = Server::bind(engine, "127.0.0.1:0", cfg).expect("bind ephemeral");
    let addr = server.local_addr().expect("bound address");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle, join)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Sends `input` in one write, reads to EOF (the input must end the
/// session with `quit`).
fn roundtrip(addr: SocketAddr, input: &str) -> String {
    let mut s = connect(addr);
    s.write_all(input.as_bytes()).expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read to EOF");
    out
}

/// What the engine itself answers for a script, rendered exactly like
/// the server renders it (one trailing newline per output block).
fn expected_for(engine: &QueryEngine, lines: &[&str]) -> String {
    let mut out = String::new();
    for line in lines {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match trimmed {
            "ping" => out.push_str("pong\n"),
            "quit" | "exit" | "shutdown" => break,
            "snapshots" => {
                out.push_str(&repl_reply(engine, ReplCmd::Snapshots));
                out.push('\n');
            }
            "vantages" => {
                out.push_str(&repl_reply(engine, ReplCmd::Vantages));
                out.push('\n');
            }
            _ => {
                let req = parse(trimmed).expect("test scripts parse");
                let resp = engine.execute(&req).expect("test scripts execute");
                out.push_str(&render_response(&req, &resp));
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn pipelined_multi_query_write_round_trips() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        // One write carrying every protocol shape: point queries,
        // listings, history walks, a control ping — then quit.
        let pairs = query_pairs(&engine, &exp);
        let (v, p) = &pairs[0];
        let mut lines = vec![
            "ping".to_string(),
            "snapshots".to_string(),
            "vantages".to_string(),
            format!("route {v} {p}"),
            format!("resolve {v} {p}"),
            format!("sa {v} {p}"),
            format!("summary {v}"),
            format!("sa-history {v} {p}"),
            format!("uptime {v}"),
            format!("top-sa {v} 3"),
            format!("persistence {v} {p} @all"),
        ];
        for (v, p) in pairs.iter().skip(1).take(40) {
            lines.push(format!("route {v} {p}"));
        }
        lines.push("quit".to_string());
        let input = lines.join("\n") + "\n";

        let got = roundtrip(addr, &input);
        let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        assert_eq!(
            got,
            expected_for(&engine, &line_refs),
            "[{backend} x{threads}] response bytes diverged"
        );

        let stats = handle.stats();
        assert_eq!(
            stats.queries, 48,
            "[{backend} x{threads}] 8 verbs + 40 routes"
        );
        assert_eq!(stats.errors, 0, "[{backend} x{threads}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn split_frames_reassemble_across_writes() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        let (v, p) = &query_pairs(&engine, &exp)[0];
        let line = format!("route {v} {p}\n");
        let (a, b) = line.as_bytes().split_at(line.len() / 2);

        let mut s = connect(addr);
        s.write_all(a).unwrap();
        s.flush().unwrap();
        // Give the poll loop time to consume the first fragment on its
        // own, so the query really is reassembled from two reads.
        std::thread::sleep(Duration::from_millis(50));
        s.write_all(b).unwrap();
        s.write_all(b"quit\n").unwrap();
        let mut got = String::new();
        s.read_to_string(&mut got).unwrap();

        let expected = expected_for(&engine, &[line.trim(), "quit"]);
        assert_eq!(got, expected, "[{backend} x{threads}]");
        assert_eq!(handle.stats().queries, 1, "[{backend} x{threads}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

/// The stdin path answers a final line that lacks its newline
/// (`str::lines` yields it); the TCP path must too, or the two diverge
/// on inputs like `printf 'route …' | nc`.
#[test]
fn unterminated_final_line_answers_on_half_close() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        let (v, p) = &query_pairs(&engine, &exp)[0];
        let line = format!("route {v} {p}");
        let mut s = connect(addr);
        s.write_all(line.as_bytes()).unwrap(); // no trailing newline
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut got = String::new();
        s.read_to_string(&mut got).unwrap();

        let req = parse(&line).unwrap();
        let expected = render_response(&req, &engine.execute(&req).unwrap());
        assert_eq!(got, format!("{expected}\n"), "[{backend} x{threads}]");
        assert_eq!(handle.stats().queries, 1, "[{backend} x{threads}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

/// An over-capacity client that pipelines queries in its very first
/// window must still *receive* the in-band rejection notice: the server
/// half-closes after the notice and discards the unread input instead
/// of closing with bytes queued (which would turn into a RST and
/// destroy the notice in flight). With serve threads, the live-conn
/// budget is shared: a rejected connection may land on a different
/// shard than the occupant and must still see the notice.
#[test]
fn server_full_notice_reaches_a_pipelining_client() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let cfg = cell_cfg(
            backend,
            threads,
            ServeConfig {
                max_conns: 1,
                ..ServeConfig::default()
            },
        );
        let (addr, handle, join) = spawn_server(engine.clone(), cfg);

        // Occupy the only slot (round-trip a ping so the accept is done).
        let mut occupant = connect(addr);
        occupant.write_all(b"ping\n").unwrap();
        let mut buf = [0u8; 8];
        let n = occupant.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong\n", "[{backend} x{threads}]");

        // The rejected client sends queries immediately — bytes the
        // server will never read.
        let (v, p) = &query_pairs(&engine, &exp)[0];
        let mut rejected = connect(addr);
        rejected
            .write_all(format!("route {v} {p}\nroute {v} {p}\n").as_bytes())
            .unwrap();
        let mut got = String::new();
        rejected
            .read_to_string(&mut got)
            .expect("notice then EOF, not a connection reset");
        assert_eq!(
            got, "error: server full (1 connections)\n",
            "[{backend} x{threads}]"
        );
        assert_eq!(handle.stats().rejected, 1, "[{backend} x{threads}]");

        drop(occupant);
        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn garbage_and_oversized_lines_error_in_band_without_killing_the_connection() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let cfg = cell_cfg(
            backend,
            threads,
            ServeConfig {
                max_line_len: 64,
                ..ServeConfig::default()
            },
        );
        let (addr, handle, join) = spawn_server(engine.clone(), cfg);

        let (v, p) = &query_pairs(&engine, &exp)[0];
        let long = "x".repeat(200);
        let input = format!("frobnicate AS1\n{long}\nroute {v} {p}\nbad line two\nquit\n");
        let got = roundtrip(addr, &input);

        let mut lines = got.lines();
        let l1 = lines.next().unwrap();
        assert!(
            l1.starts_with("error line 1: unknown query 'frobnicate'"),
            "[{backend} x{threads}] garbage must be a line-numbered error: {l1}"
        );
        let l2 = got
            .lines()
            .find(|l| l.starts_with("error line 2:"))
            .expect("oversized line errors with its number");
        assert!(
            l2.contains("line too long") && l2.contains("cap 64"),
            "[{backend} x{threads}] oversized error names the cap: {l2}"
        );
        // The connection survived both: the valid query still answered …
        let req = parse(&format!("route {v} {p}")).unwrap();
        let expected = render_response(&req, &engine.execute(&req).unwrap());
        assert!(
            got.lines().any(|l| l == expected),
            "[{backend} x{threads}] valid query after errors must still answer.\ngot:\n{got}"
        );
        // … and the second garbage line is numbered *after* the long line.
        assert!(
            got.lines().any(|l| l.starts_with("error line 4:")),
            "[{backend} x{threads}] line numbering must count the oversized line:\n{got}"
        );

        let stats = handle.stats();
        assert_eq!(stats.queries, 1, "[{backend} x{threads}]");
        assert_eq!(stats.errors, 3, "[{backend} x{threads}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

/// Heavy by design (200k pipelined queries): the property is strictly
/// per-connection (one connection's write buffer versus one shard's
/// read loop), so it sweeps the backends at one serve thread; the
/// sharded cells exercise backpressure via the cross-shard totals and
/// concurrency scenarios instead.
#[test]
fn backpressure_stops_reading_and_bounds_the_write_buffer() {
    for backend in backends() {
        let (engine, exp) = tiny_engine();
        let cap = 4 * 1024;
        let cfg = cell_cfg(
            backend,
            1,
            ServeConfig {
                write_buf_cap: cap,
                idle_timeout: Duration::from_secs(120),
                ..ServeConfig::default()
            },
        );
        let (addr, handle, join) = spawn_server(engine.clone(), cfg);

        // A high-expansion query (~12 request bytes → ~150+ response
        // bytes): kernel socket buffers on loopback autotune into the
        // megabytes, so the *response* volume has to dwarf what
        // sndbuf+rcvbuf can swallow before the server visibly wedges.
        let (v, _) = &query_pairs(&engine, &exp)[0];
        let line = format!("summary {v}\n");
        let req = parse(line.trim()).unwrap();
        let expected = render_response(&req, &engine.execute(&req).unwrap());

        const N: usize = 200_000;
        let payload: Vec<u8> = line.as_bytes().repeat(N);
        let total_responses = (expected.len() + 1) * N;
        assert!(
            total_responses > 24 * 1024 * 1024,
            "responses ({total_responses} B) must exceed any plausible kernel buffering"
        );

        let mut s = connect(addr);
        s.set_nonblocking(true).unwrap();

        // Phase 1: shovel queries without ever reading, then watch the
        // server's app-level read counter. Backpressure means it stops
        // *consuming* input long before the payload runs out — the
        // unread remainder parks in kernel buffers (and possibly our
        // send loop), not in server memory.
        let mut sent = 0usize;
        let mut stalled_rounds = 0;
        while sent < payload.len() && stalled_rounds < 500 {
            match s.write(&payload[sent..]) {
                Ok(n) => {
                    sent += n;
                    stalled_rounds = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    stalled_rounds += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("send failed: {e}"),
            }
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut consumed = handle.stats().bytes_in;
        loop {
            std::thread::sleep(Duration::from_millis(400));
            let now_in = handle.stats().bytes_in;
            if now_in == consumed {
                break; // plateaued: the server stopped reading us
            }
            consumed = now_in;
            assert!(
                Instant::now() < deadline,
                "[{backend}] bytes_in never plateaued"
            );
        }
        assert!(
            (consumed as usize) < payload.len(),
            "[{backend}] server consumed the whole {} B payload from a client that never reads",
            payload.len()
        );
        // Bounded growth: the write buffer may overshoot the cap by at
        // most one read's worth of rendered responses (64 KiB of
        // requests at this expansion ratio), never by the workload size.
        let peak = handle.stats().max_write_buf as usize;
        let one_read_slack = (64 * 1024 / line.len() + 1) * (expected.len() + 1);
        assert!(
            peak <= cap + one_read_slack,
            "[{backend}] write buffer grew without bound: peak {peak} B vs cap {cap} B + slack {one_read_slack} B"
        );

        // Phase 2: start draining. Everything already accepted must
        // arrive, then the rest of the payload flows and answers too.
        s.set_nonblocking(false).unwrap();
        let writer = {
            let payload = payload[sent..].to_vec();
            let mut s2 = s.try_clone().unwrap();
            std::thread::spawn(move || {
                s2.write_all(&payload).unwrap();
                s2.write_all(b"quit\n").unwrap();
            })
        };
        let mut got = String::new();
        s.read_to_string(&mut got).unwrap();
        writer.join().unwrap();

        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(
            lines.len(),
            N,
            "[{backend}] every pipelined query must answer"
        );
        assert!(lines.iter().all(|l| *l == expected), "[{backend}]");
        assert_eq!(handle.stats().queries, N as u64, "[{backend}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn idle_connections_are_shed_and_counted() {
    for (backend, threads) in matrix() {
        let (engine, _exp) = tiny_engine();
        let cfg = cell_cfg(
            backend,
            threads,
            ServeConfig {
                idle_timeout: Duration::from_millis(250),
                ..ServeConfig::default()
            },
        );
        let (addr, handle, join) = spawn_server(engine, cfg);

        let mut s = connect(addr);
        s.write_all(b"ping\n").unwrap();
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong\n", "[{backend} x{threads}]");

        // Now go silent: the server must hang up on us (EOF or a reset,
        // depending on how the close lands — both mean "shed", never a
        // hang).
        let mut rest = Vec::new();
        match s.read_to_end(&mut rest) {
            Ok(_) => assert!(rest.is_empty(), "[{backend} x{threads}]"),
            Err(e) => assert_eq!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset,
                "[{backend} x{threads}] {e}"
            ),
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.stats().shed_idle == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.stats().shed_idle, 1, "[{backend} x{threads}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn concurrent_clients_get_exactly_direct_execute_answers() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        let pairs = query_pairs(&engine, &exp);
        const CLIENTS: usize = 6;
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let engine = &engine;
                let pairs = &pairs;
                scope.spawn(move || {
                    // Each client gets its own slice of the workload,
                    // with every verb shape mixed in.
                    let mut lines: Vec<String> = Vec::new();
                    for (i, (v, p)) in pairs.iter().enumerate().filter(|(i, _)| i % CLIENTS == c) {
                        lines.push(match i % 4 {
                            0 => format!("route {v} {p}"),
                            1 => format!("resolve {v} {p}"),
                            2 => format!("sa {v} {p}"),
                            _ => format!("summary {v}"),
                        });
                    }
                    lines.push("quit".into());
                    let input = lines.join("\n") + "\n";
                    let got = roundtrip(addr, &input);
                    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
                    assert_eq!(
                        got,
                        expected_for(engine, &refs),
                        "[{backend} x{threads}] client {c} diverged"
                    );
                });
            }
        });

        let stats = handle.stats();
        assert_eq!(stats.accepted, CLIENTS as u64, "[{backend} x{threads}]");
        assert_eq!(stats.queries, pairs.len() as u64, "[{backend} x{threads}]");
        assert_eq!(stats.errors, 0, "[{backend} x{threads}]");

        handle.shutdown();
        let final_stats = join.join().unwrap();
        assert_eq!(
            final_stats.queries,
            pairs.len() as u64,
            "[{backend} x{threads}]"
        );
    }
}

/// Every pipelined query increments its verb's counter exactly once —
/// the contract the `metrics` exposition (and `ServeStats::queries`,
/// now a sum over these counters) rests on.
#[test]
fn per_verb_counters_increment_exactly_once_per_pipelined_query() {
    use rpi_query::metrics::VERBS;
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        let pairs = query_pairs(&engine, &exp);
        let (v, p) = &pairs[0];
        // A known verb mix in one pipelined write: 3 route, 2 resolve,
        // 1 sa, 1 summary, 1 uptime.
        let input = format!(
            "route {v} {p}\nroute {v} {p}\nresolve {v} {p}\nroute {v} {p}\n\
             resolve {v} {p}\nsa {v} {p}\nsummary {v}\nuptime {v}\nquit\n"
        );
        let _ = roundtrip(addr, &input);

        let want = [
            ("route", 3),
            ("resolve", 2),
            ("sa", 1),
            ("summary", 1),
            ("uptime", 1),
        ];
        let m = engine.metrics();
        for (i, verb) in VERBS.iter().enumerate() {
            let expect = want.iter().find(|(w, _)| w == verb).map_or(0, |&(_, n)| n);
            assert_eq!(
                m.serve_queries_total[i].get(),
                expect,
                "[{backend} x{threads}] verb '{verb}' count"
            );
            assert_eq!(
                m.serve_query_seconds[i].snapshot().count(),
                expect,
                "[{backend} x{threads}] verb '{verb}' latency samples"
            );
        }
        assert_eq!(handle.stats().queries, 8, "[{backend} x{threads}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

/// Sharded serving must lose nothing and double-count nothing: with
/// connections spread round-robin across 4 event-loop threads, the
/// per-verb counters (shared registry, one counter per verb) sum to
/// exactly the client-side totals, and every client still gets
/// byte-identical answers.
#[test]
fn per_verb_totals_sum_exactly_across_shards() {
    use rpi_query::metrics::VERBS;
    for backend in backends() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) =
            spawn_server(engine.clone(), cell_cfg(backend, 4, ServeConfig::default()));

        let pairs = query_pairs(&engine, &exp);
        let (v, p) = &pairs[0];
        // Per client: 3 route, 2 resolve, 1 sa, 1 summary — the
        // round-robin acceptor spreads the clients over all 4 shards.
        const CLIENTS: usize = 8;
        let input = format!(
            "route {v} {p}\nroute {v} {p}\nresolve {v} {p}\nroute {v} {p}\n\
             resolve {v} {p}\nsa {v} {p}\nsummary {v}\nquit\n"
        );
        let lines: Vec<&str> = input.lines().collect();
        let expected = expected_for(&engine, &lines);
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let input = &input;
                let expected = &expected;
                scope.spawn(move || {
                    let got = roundtrip(addr, input);
                    assert_eq!(&got, expected, "[{backend}] client {c} diverged");
                });
            }
        });

        let want = [("route", 3), ("resolve", 2), ("sa", 1), ("summary", 1)];
        let m = engine.metrics();
        for (i, verb) in VERBS.iter().enumerate() {
            let per_client = want.iter().find(|(w, _)| w == verb).map_or(0, |&(_, n)| n);
            let expect = per_client * CLIENTS as u64;
            assert_eq!(
                m.serve_queries_total[i].get(),
                expect,
                "[{backend}] verb '{verb}' total across shards"
            );
            assert_eq!(
                m.serve_query_seconds[i].snapshot().count(),
                expect,
                "[{backend}] verb '{verb}' latency samples across shards"
            );
        }
        let stats = handle.stats();
        assert_eq!(stats.queries, 7 * CLIENTS as u64, "[{backend}]");
        assert_eq!(stats.accepted, CLIENTS as u64, "[{backend}]");
        assert_eq!(stats.errors, 0, "[{backend}]");

        handle.shutdown();
        join.join().unwrap();
    }
}

/// The exposition's key set and ordering never depend on traffic or
/// transport: two TCP scrapes taken mid-load differ only in sample
/// values, and a stdin-rendered scrape of the same engine carries the
/// identical key sequence ('metrics names' is byte-identical outright).
#[test]
fn metrics_exposition_keys_are_stable_across_scrapes_and_transports() {
    fn keys(exposition: &str) -> Vec<String> {
        exposition
            .lines()
            .map(|l| {
                if l.starts_with('#') {
                    l.to_string() // TYPE lines are value-free already
                } else {
                    l[..l.rfind(' ').expect("sample lines end in a value")].to_string()
                }
            })
            .collect()
    }

    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        let (v, p) = &query_pairs(&engine, &exp)[0];
        let first = roundtrip(addr, "metrics\nquit\n");
        let second = roundtrip(
            addr,
            &format!("route {v} {p}\nresolve {v} {p}\nmetrics\nquit\n"),
        );
        let second_metrics = second
            .split_once("# TYPE")
            .map(|(_, rest)| format!("# TYPE{rest}"))
            .expect("scrape contains the exposition");
        assert_eq!(
            keys(&first),
            keys(&second_metrics),
            "[{backend} x{threads}] key set/order must not depend on traffic"
        );

        // Transport equivalence: the stdin REPL renders through the same
        // function, against the same registry.
        let stdin_render = repl_reply(&engine, ReplCmd::Metrics);
        assert_eq!(keys(&first), keys(&stdin_render), "[{backend} x{threads}]");
        let names_tcp = roundtrip(addr, "metrics names\nquit\n");
        assert_eq!(
            names_tcp,
            format!("{}\n", repl_reply(&engine, ReplCmd::MetricsNames)),
            "[{backend} x{threads}] 'metrics names' is byte-identical across transports"
        );

        handle.shutdown();
        join.join().unwrap();
    }
}

/// Sharded servers expose per-shard instances of the connection gauges
/// (`shard="N"` labels on the existing families) — and single-threaded
/// servers must NOT, keeping the original exposition byte-compatible.
#[test]
fn per_shard_gauge_labels_appear_only_for_sharded_servers() {
    let (engine, _exp) = tiny_engine();
    let (addr, handle, join) = spawn_server(engine.clone(), ServeConfig::default());
    let single = roundtrip(addr, "metrics\nquit\n");
    assert!(
        !single.contains("rpi_serve_active_connections{"),
        "single-thread exposition must carry no shard labels:\n{single}"
    );
    handle.shutdown();
    join.join().unwrap();

    let (engine, _exp) = tiny_engine();
    let cfg = ServeConfig {
        serve_threads: 4,
        ..ServeConfig::default()
    };
    let (addr, handle, join) = spawn_server(engine.clone(), cfg);
    let sharded = roundtrip(addr, "metrics\nquit\n");
    for shard in 0..4 {
        assert!(
            sharded.contains(&format!(
                "rpi_serve_active_connections{{shard=\"{shard}\"}}"
            )),
            "sharded exposition must list shard {shard}:\n{sharded}"
        );
        assert!(
            sharded.contains(&format!("rpi_serve_write_buf_bytes{{shard=\"{shard}\"}}")),
            "sharded exposition must list shard {shard} write-buf:\n{sharded}"
        );
    }
    // The schema is per-family: shard labels add no new names.
    let names = roundtrip(addr, "metrics names\nquit\n");
    assert_eq!(
        names.matches("rpi_serve_active_connections").count(),
        1,
        "labels must not add schema lines:\n{names}"
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_verb_stops_the_server_and_reports_stats() {
    for (backend, threads) in matrix() {
        let (engine, exp) = tiny_engine();
        let (addr, _handle, join) = spawn_server(
            engine.clone(),
            cell_cfg(backend, threads, ServeConfig::default()),
        );

        let (v, p) = &query_pairs(&engine, &exp)[0];
        let got = roundtrip(addr, &format!("route {v} {p}\nshutdown\n"));
        let req = parse(&format!("route {v} {p}")).unwrap();
        let expected = render_response(&req, &engine.execute(&req).unwrap());
        assert_eq!(got, format!("{expected}\n"), "[{backend} x{threads}]");

        // run() must return (no hang) with the final snapshot.
        let stats = join.join().unwrap();
        assert_eq!(stats.queries, 1, "[{backend} x{threads}]");
        assert_eq!(stats.active, 0, "[{backend} x{threads}]");
    }
}
