//! The tier correctness contract, enforced differentially: a
//! tier-attached engine (`--hot-cap`) must answer **every** protocol
//! verb byte-identically to the fully hydrated engine over the same
//! archive — zero-copy cold answers, chain-replayed hydrations, LRU
//! evictions and re-hydrations included — and a damaged mapped segment
//! must surface as a typed `QueryError::Corrupt`, never a panic and
//! never a wrong answer.
//!
//! The scenario harness mirrors `archive.rs`: seeded churn series drive
//! keyframed archives, and a seeded query fuzzer compares rendered
//! responses byte for byte at several hot-cap settings.

use rand::prelude::*;
use rand::rngs::StdRng;

use bgp_sim::churn::simulate_series;
use bgp_sim::{ChurnConfig, GroundTruth, PolicyParams, SimOutput, VantageSpec};
use bgp_types::{Asn, Ipv4Prefix};
use net_topology::{AsGraph, InternetConfig, InternetSize};
use rpi_query::{
    render_response, Query, QueryEngine, QueryError, QueryRequest, Residency, SaveOptions, Scope,
    SnapshotId,
};
use rpi_sec::{Roa, RoaTable};
use rpi_store::{Manifest, SegmentKind};

const SNAPSHOTS: usize = 6;
const QUERIES: usize = 300;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rpi-tier-test-{tag}-{}-{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Scenario {
    labels: Vec<String>,
    outputs: Vec<SimOutput>,
    oracles: Vec<AsGraph>,
    vantages: Vec<Asn>,
    prefixes: Vec<Ipv4Prefix>,
}

fn build_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x71E2_0A11);
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(seed)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    let cfg = ChurnConfig {
        seed,
        steps: SNAPSHOTS,
        flip_prob: rng.gen_range(0.1..0.6),
        link_failure_prob: rng.gen_range(0.05..0.4),
        label: "tr",
    };
    let series = simulate_series(&g, &truth, &spec, &cfg);

    let mut vantages: Vec<Asn> = spec.collector_peers.clone();
    vantages.extend(&spec.lg_ases);
    vantages.push(Asn(65_500)); // never a vantage
    vantages.dedup();
    let mut prefixes: Vec<Ipv4Prefix> = series
        .snapshots
        .iter()
        .flat_map(|o| o.collector.rows.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    prefixes.push("203.0.113.0/24".parse().unwrap());
    prefixes.push("0.0.0.0/0".parse().unwrap());

    Scenario {
        labels: series.labels,
        outputs: series.snapshots,
        oracles: vec![g; SNAPSHOTS],
        vantages,
        prefixes,
    }
}

fn scenario_roas(sc: &Scenario, seed: u64) -> RoaTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x40A5_0A75);
    let roas = sc
        .prefixes
        .iter()
        .filter(|p| p.len() > 0)
        .take(8)
        .map(|&prefix| Roa {
            prefix,
            max_len: (prefix.len() + rng.gen_range(0..4u8)).min(32),
            origin: if rng.gen_bool(0.5) {
                *sc.vantages.choose(&mut rng).unwrap()
            } else {
                Asn(64_496 + rng.gen_range(0..4u32))
            },
        })
        .collect();
    RoaTable::new(roas)
}

fn ingest(sc: &Scenario, shards: usize) -> QueryEngine {
    let mut e = QueryEngine::new(shards);
    for (i, (label, out)) in sc.labels.iter().zip(&sc.outputs).enumerate() {
        if i == 0 {
            e.ingest_output(out, &sc.oracles[i], label);
        } else {
            e.ingest_output_incremental(&sc.outputs[i - 1], out, &sc.oracles[i], label);
        }
    }
    e
}

/// Saves the scenario with the given keyframe cadence and returns the
/// archive directory plus its manifest.
fn saved(
    sc: &Scenario,
    seed: u64,
    keyframe_every: Option<usize>,
    tag: &str,
) -> (std::path::PathBuf, Manifest) {
    let mut engine = ingest(sc, 4);
    engine.set_roas(scenario_roas(sc, seed));
    let dir = tmp_dir(tag);
    let manifest = engine
        .save_archive_with(&dir, false, SaveOptions { keyframe_every })
        .expect("save");
    (dir, manifest)
}

fn arb_point_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..4u8) {
        0 => Scope::Latest,
        1 => Scope::Id(SnapshotId(rng.gen_range(0..n as u32))),
        2 => Scope::Id(SnapshotId(n as u32 + 3)),
        _ => Scope::All,
    }
}

fn arb_history_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..3u8) {
        0 => Scope::All,
        1 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(a..n as u32);
            Scope::Range(SnapshotId(a), SnapshotId(b))
        }
        _ => Scope::Latest,
    }
}

/// Every protocol verb, random scopes — the byte-equivalence surface.
fn arb_request(rng: &mut StdRng, sc: &Scenario, n: usize) -> QueryRequest {
    let vantage = *sc.vantages.choose(rng).unwrap();
    let prefix = *sc.prefixes.choose(rng).unwrap();
    match rng.gen_range(0..13u8) {
        0 => Query::Route { vantage, prefix }.at(arb_point_scope(rng, n)),
        1 => Query::Resolve { vantage, prefix }.at(arb_point_scope(rng, n)),
        2 => Query::SaStatus { vantage, prefix }.at(arb_point_scope(rng, n)),
        3 => {
            let b = *sc.vantages.choose(rng).unwrap();
            Query::Relationship { a: vantage, b }.at(arb_point_scope(rng, n))
        }
        4 => Query::PolicySummary { asn: vantage }.at(arb_point_scope(rng, n)),
        5 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            Query::Diff.at(Scope::Range(SnapshotId(a), SnapshotId(b)))
        }
        6 => Query::SaHistory { vantage, prefix }.at(arb_history_scope(rng, n)),
        7 => Query::UptimeHistogram { vantage }.at(arb_history_scope(rng, n)),
        8 => Query::TopKSaOrigins {
            vantage,
            k: rng.gen_range(0..6usize),
        }
        .at(arb_history_scope(rng, n)),
        9 => Query::PersistenceClass { vantage, prefix }.at(arb_history_scope(rng, n)),
        10 => Query::Rov { vantage, prefix }.at(arb_point_scope(rng, n)),
        11 => Query::Hijacks.at(arb_history_scope(rng, n)),
        _ => Query::Leaks.at(arb_point_scope(rng, n)),
    }
}

fn rendered(engine: &QueryEngine, req: &QueryRequest) -> String {
    match engine.execute(req) {
        Ok(resp) => render_response(req, &resp),
        Err(e) => format!("error: {e}"),
    }
}

/// The tentpole contract: at every hot-cap (1 forces constant eviction,
/// larger caps mix residencies) the tiered engine's rendered responses
/// are byte-identical to the hydrated engine's across the whole verb
/// surface.
fn run_differential(seed: u64, keyframe_every: Option<usize>, tag: &str) {
    let sc = build_scenario(seed);
    let (dir, _) = saved(&sc, seed, keyframe_every, tag);
    let hydrated = QueryEngine::load_archive(&dir).expect("hydrated load");
    let n = hydrated.snapshot_count();

    for hot_cap in [1usize, 2, 4] {
        let tiered = QueryEngine::load_archive_tiered(&dir, hot_cap).expect("tiered load");
        let stats = tiered.tier_stats().expect("v2 archives tier-attach");
        assert_eq!(stats.snapshots, n);
        assert_eq!(stats.hot, 0, "attach must not hydrate anything");
        assert_eq!(stats.attaches, n as u64);
        assert_eq!(hydrated.labels(), tiered.labels());

        let mut rng = StdRng::seed_from_u64(seed ^ 0x0AAC_417E ^ hot_cap as u64);
        let mut answered = 0usize;
        for i in 0..QUERIES {
            let req = arb_request(&mut rng, &sc, n);
            let a = rendered(&hydrated, &req);
            let b = rendered(&tiered, &req);
            assert_eq!(
                a, b,
                "seed {seed}, hot_cap {hot_cap}, query {i}: tier diverged on {req:?}"
            );
            if !a.starts_with("error:") {
                answered += 1;
            }
        }
        assert!(
            answered > QUERIES / 2,
            "seed {seed}: degenerate scenario, only {answered}/{QUERIES} answered"
        );

        let stats = tiered.tier_stats().unwrap();
        assert!(
            stats.hot <= hot_cap.max(1),
            "hot set exceeded its cap: {stats:?}"
        );
        assert!(
            stats.hydrations > 0,
            "the fuzz mix must hydrate for history verbs: {stats:?}"
        );
        if hot_cap < n {
            assert!(
                stats.evictions > 0,
                "a cap below the snapshot count must evict: {stats:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn differential_keyframed_seed_0xa1() {
    run_differential(0xA1, Some(2), "a1");
}

#[test]
fn differential_keyframed_seed_0xb2() {
    run_differential(0xB2, Some(3), "b2");
}

#[test]
fn differential_unkeyframed_seed_0xc3() {
    // No forced cadence: only the leading full segment anchors chains.
    run_differential(0xC3, None, "c3");
}

/// Extra seeds without a rebuild: `RPI_TIER_SEEDS=7,8 cargo test …`.
#[test]
fn differential_extra_seeds_from_env() {
    let Ok(spec) = std::env::var("RPI_TIER_SEEDS") else {
        return;
    };
    for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = part
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad seed '{part}' in RPI_TIER_SEEDS"));
        run_differential(seed, Some(2), "env");
    }
}

/// `--keyframe-every N` writes self-contained keyframes on cadence:
/// every delta chain is bounded by N, the leading full segment is a
/// keyframe, and flagged entries are exactly the standalone fulls.
#[test]
fn keyframe_cadence_bounds_every_chain() {
    let sc = build_scenario(0xD4);
    let (dir, manifest) = saved(&sc, 0xD4, Some(2), "cadence");
    let snaps: Vec<_> = manifest.snapshot_segments().collect();
    assert_eq!(snaps.len(), SNAPSHOTS);
    assert!(snaps[0].1.is_keyframe(), "the first segment anchors");

    let mut since_keyframe = 0usize;
    let mut keyframes = 0usize;
    for (_, entry) in &snaps {
        if entry.is_keyframe() {
            assert_eq!(entry.kind, SegmentKind::Full, "keyframes are full");
            since_keyframe = 0;
            keyframes += 1;
        } else {
            since_keyframe += 1;
        }
        assert!(
            since_keyframe < 2,
            "a chain outran --keyframe-every 2: {:?}",
            snaps
                .iter()
                .map(|(_, e)| (e.kind, e.flags))
                .collect::<Vec<_>>()
        );
    }
    assert!(
        keyframes >= SNAPSHOTS / 2,
        "cadence 2 over {SNAPSHOTS} snapshots"
    );

    // The keyframed archive still loads hydrated, byte-identical.
    let hydrated = QueryEngine::load_archive(&dir).expect("load");
    assert_eq!(hydrated.snapshot_count(), SNAPSHOTS);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cold point query against a keyframe-backed snapshot is answered
/// zero-copy: cold hits accrue, hydrations stay at zero, residency
/// stays cold.
#[test]
fn cold_point_queries_never_hydrate() {
    let sc = build_scenario(0xE5);
    let (dir, manifest) = saved(&sc, 0xE5, Some(1), "cold");
    // Cadence 1: every snapshot is a keyframe — all cold-queryable.
    assert!(manifest.snapshot_segments().all(|(_, e)| e.is_keyframe()));

    let tiered = QueryEngine::load_archive_tiered(&dir, 1).expect("tiered load");
    let vantage = sc.vantages[0];
    let mut asked = 0u64;
    for i in 0..SNAPSHOTS {
        let id = SnapshotId(i as u32);
        for &prefix in sc.prefixes.iter().take(5) {
            for query in [
                Query::Route { vantage, prefix },
                Query::Resolve { vantage, prefix },
                Query::Rov { vantage, prefix },
            ] {
                tiered
                    .execute(&query.at(Scope::Id(id)))
                    .expect("cold query");
                asked += 1;
            }
        }
        assert_eq!(tiered.residency(id), Some(Residency::Cold));
    }
    let stats = tiered.tier_stats().unwrap();
    assert_eq!(
        stats.hydrations, 0,
        "point queries must stay on the mapping"
    );
    assert_eq!(stats.cold_hits, asked);
    assert_eq!(stats.hot, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// LRU round trip: hydrations land hot, the cap evicts the
/// least-recently-used back to cold, and a re-hydration answers
/// byte-identically to the first.
#[test]
fn eviction_and_rehydration_round_trip() {
    let sc = build_scenario(0xF6);
    let (dir, _) = saved(&sc, 0xF6, Some(2), "lru");
    let hydrated = QueryEngine::load_archive(&dir).expect("hydrated load");
    let tiered = QueryEngine::load_archive_tiered(&dir, 1).expect("tiered load");

    let asn = sc.vantages[0];
    let summary_at = |id: u32| Query::PolicySummary { asn }.at(Scope::Id(SnapshotId(id)));

    // Hydrate snapshot 0, then 5 (evicting everything older), then 0
    // again (re-hydrating from its keyframe).
    let first = rendered(&tiered, &summary_at(0));
    assert_eq!(tiered.residency(SnapshotId(0)), Some(Residency::Hot));

    let _ = rendered(&tiered, &summary_at(SNAPSHOTS as u32 - 1));
    assert_eq!(
        tiered.residency(SnapshotId(0)),
        Some(Residency::Cold),
        "cap 1 must evict snapshot 0"
    );
    assert_eq!(
        tiered.residency(SnapshotId(SNAPSHOTS as u32 - 1)),
        Some(Residency::Hot)
    );

    let again = rendered(&tiered, &summary_at(0));
    assert_eq!(first, again, "re-hydration changed an answer");
    assert_eq!(first, rendered(&hydrated, &summary_at(0)));

    let stats = tiered.tier_stats().unwrap();
    assert!(stats.evictions > 0);
    assert_eq!(stats.hot, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// History walks spanning hot and cold snapshots answer identically to
/// the hydrated engine (the walk hydrates cold members through the LRU
/// mid-query).
#[test]
fn history_spans_hot_and_cold() {
    let sc = build_scenario(0x17);
    let (dir, _) = saved(&sc, 0x17, Some(2), "hist");
    let hydrated = QueryEngine::load_archive(&dir).expect("hydrated load");
    let tiered = QueryEngine::load_archive_tiered(&dir, 2).expect("tiered load");

    // Pin one snapshot hot first, so the @all walk genuinely mixes
    // residencies.
    let asn = sc.vantages[0];
    let _ = rendered(
        &tiered,
        &Query::PolicySummary { asn }.at(Scope::Id(SnapshotId(2))),
    );

    for &vantage in sc.vantages.iter().take(4) {
        for &prefix in sc.prefixes.iter().take(4) {
            for req in [
                Query::SaHistory { vantage, prefix }.at(Scope::All),
                Query::UptimeHistogram { vantage }.at(Scope::All),
                Query::PersistenceClass { vantage, prefix }
                    .at(Scope::Range(SnapshotId(1), SnapshotId(4))),
                Query::Hijacks.at(Scope::All),
            ] {
                assert_eq!(
                    rendered(&hydrated, &req),
                    rendered(&tiered, &req),
                    "history diverged on {req:?}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped byte in a mapped segment surfaces on first touch as a typed
/// `QueryError::Corrupt` naming the file — lazily, so the attach itself
/// still succeeds, and the error is an answer, never a panic.
#[test]
fn corrupt_mapped_segment_is_a_typed_error() {
    let sc = build_scenario(0x28);
    let (dir, manifest) = saved(&sc, 0x28, Some(1), "corrupt");
    let entry = manifest
        .snapshot_segments()
        .next()
        .map(|(_, e)| e.clone())
        .expect("snapshot segments exist");
    let path = dir.join(&entry.file);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    // Attach succeeds: integrity is checked lazily, at first read.
    let tiered = QueryEngine::load_archive_tiered(&dir, 1).expect("attach is lazy");
    let req = Query::Route {
        vantage: sc.vantages[0],
        prefix: sc.prefixes[0],
    }
    .at(Scope::Id(SnapshotId(0)));
    match tiered.execute(&req) {
        Err(QueryError::Corrupt { file, what, .. }) => {
            assert_eq!(file, entry.file);
            assert!(what.contains("checksum"), "unexpected what: {what}");
        }
        other => panic!("wanted Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tier-attached engines are read-only servers: saving one is a typed
/// `Unsupported` error, not a half-serialized archive.
#[test]
fn tiered_engine_refuses_to_save() {
    let sc = build_scenario(0x39);
    let (dir, _) = saved(&sc, 0x39, Some(2), "resave");
    let mut tiered = QueryEngine::load_archive_tiered(&dir, 1).expect("tiered load");
    let dir2 = tmp_dir("resave2");
    match tiered.save_archive(&dir2, false) {
        Err(rpi_store::StoreError::Unsupported { .. }) => {}
        other => panic!("wanted Unsupported, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// An archive whose full segments predate the vantage directory (the v1
/// segment layout) cannot be mapped; `load_archive_tiered` falls back to
/// the fully hydrated loader and still answers every query. The fixture
/// is fabricated by stripping the directory back out of a v2 segment —
/// byte-exactly the v1 layout.
#[test]
fn v1_archive_falls_back_to_hydrated_load() {
    let sc = build_scenario(0x4B);
    let (dir, manifest) = saved(&sc, 0x4B, None, "v1");
    let hydrated = QueryEngine::load_archive(&dir).expect("hydrated load");

    // Strip every full snapshot segment down to its v1 layout: clear the
    // directory flag (it sits right after the label) and drop the
    // trailing directory + footer.
    let mut fixed = manifest.clone();
    for (idx, entry) in manifest.snapshot_segments() {
        if entry.kind != SegmentKind::Full {
            continue;
        }
        let path = dir.join(&entry.file);
        let mut bytes = std::fs::read(&path).unwrap();
        let label_len = bytes[0] as usize; // short labels: 1-byte varint
        assert_eq!(&bytes[1..1 + label_len], entry.label.as_bytes());
        let flags_at = 1 + label_len;
        assert_ne!(bytes[flags_at] & 0x2, 0, "v2 fulls carry a directory");
        bytes[flags_at] &= !0x2;
        let dir_offset =
            u64::from_be_bytes(bytes[bytes.len() - 12..bytes.len() - 4].try_into().unwrap());
        bytes.truncate(dir_offset as usize);
        std::fs::write(&path, &bytes).unwrap();
        fixed.segments[idx].bytes = bytes.len() as u64;
        fixed.segments[idx].crc32 = rpi_store::crc32(&bytes);
        fixed.segments[idx].flags = 0; // v1 had no keyframe flags
    }
    fixed.write(&dir, true).unwrap();

    let fallback = QueryEngine::load_archive_tiered(&dir, 2).expect("fallback load");
    assert!(
        fallback.tier_stats().is_none(),
        "a v1 archive must load hydrated"
    );
    assert_eq!(fallback.snapshot_count(), hydrated.snapshot_count());

    let mut rng = StdRng::seed_from_u64(0x4B ^ 0x0AAC_417E);
    for _ in 0..60 {
        let req = arb_request(&mut rng, &sc, SNAPSHOTS);
        assert_eq!(
            rendered(&hydrated, &req),
            rendered(&fallback, &req),
            "v1 fallback diverged on {req:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
