//! End-to-end golden test of `rpi-queryd --queries`: pipes the committed
//! smoke query file through the daemon against the deterministic tiny
//! seed-11 world and diffs stdout against the committed golden output —
//! the same check CI runs as a shell step.
//!
//! If the wire grammar or response rendering changes intentionally,
//! regenerate with:
//!
//! ```text
//! cargo run --release -p rpi-query --bin rpi-queryd -- \
//!   --size tiny --seed 11 --snapshots 4 --shards 4 \
//!   --roas crates/query/tests/data/smoke.roas \
//!   --queries crates/query/tests/data/smoke.q > crates/query/tests/data/smoke.golden
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn queries_file_matches_golden_output() {
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let queries = data.join("smoke.q");
    let golden = std::fs::read_to_string(data.join("smoke.golden")).expect("golden committed");

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args([
            "--size",
            "tiny",
            "--seed",
            "11",
            "--snapshots",
            "4",
            "--shards",
            "4",
        ])
        .arg("--roas")
        .arg(data.join("smoke.roas"))
        .arg("--queries")
        .arg(&queries)
        .output()
        .expect("rpi-queryd runs");

    assert!(
        out.status.success(),
        "rpi-queryd failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_eq!(
        stdout, golden,
        "stdout diverged from tests/data/smoke.golden (see module docs to regenerate)"
    );
}

/// The same world ingested with `--incremental` must answer every smoke
/// query identically — the end-to-end face of the differential contract
/// in `tests/incremental_diff.rs`. Only the `snapshots` listing may
/// differ (it reports the shared-node counts that prove the overlays are
/// real), so it diffs against its own golden. Regenerate with the module
/// command plus `--incremental`, into `smoke_incremental.golden`.
#[test]
fn incremental_ingest_matches_its_golden() {
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let queries = data.join("smoke.q");
    let golden =
        std::fs::read_to_string(data.join("smoke_incremental.golden")).expect("golden committed");

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args([
            "--size",
            "tiny",
            "--seed",
            "11",
            "--snapshots",
            "4",
            "--shards",
            "4",
            "--incremental",
        ])
        .arg("--roas")
        .arg(data.join("smoke.roas"))
        .arg("--queries")
        .arg(&queries)
        .output()
        .expect("rpi-queryd runs");

    assert!(
        out.status.success(),
        "rpi-queryd --incremental failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_eq!(
        stdout, golden,
        "stdout diverged from tests/data/smoke_incremental.golden"
    );

    // Belt and braces: apart from the `snapshots` listing (which shows
    // shared-node counts), the two goldens are identical line streams.
    let full_golden = std::fs::read_to_string(data.join("smoke.golden")).unwrap();
    let strip = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| !l.contains("vantages)") && !l.contains("vantages,"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(
        strip(&stdout),
        strip(&full_golden),
        "incremental ingest changed a query answer"
    );
}

/// The archive smoke: the 5-snapshot incremental world saved to
/// `/tmp/rpi-archive`, cold-started with `--archive`, and diffed against
/// its golden — the byte-level face of the save→load contract, including
/// the `archive` and `snapshots` storage listings (the path is part of
/// the golden, so the archive lives at a fixed location; CI runs the
/// same two commands as a shell step). Regenerate with:
///
/// The save is given `--roas`; the cold start is not — its `rov` answers
/// come from the archive's own roa segment, proving the round-trip.
///
/// ```text
/// cargo run --release -p rpi-query --bin rpi-queryd -- \
///   --size tiny --seed 11 --snapshots 5 --shards 4 --incremental \
///   --roas crates/query/tests/data/smoke.roas \
///   --save /tmp/rpi-archive --force
/// cargo run --release -p rpi-query --bin rpi-queryd -- \
///   --archive /tmp/rpi-archive \
///   --queries crates/query/tests/data/smoke_archive.q \
///   > crates/query/tests/data/smoke_archive.golden
/// ```
#[test]
fn archive_cold_start_matches_its_golden() {
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let queries = data.join("smoke_archive.q");
    let golden =
        std::fs::read_to_string(data.join("smoke_archive.golden")).expect("golden committed");

    let save = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args([
            "--size",
            "tiny",
            "--seed",
            "11",
            "--snapshots",
            "5",
            "--shards",
            "4",
            "--incremental",
            "--save",
            "/tmp/rpi-archive",
            "--force",
        ])
        .arg("--roas")
        .arg(data.join("smoke.roas"))
        .output()
        .expect("rpi-queryd runs");
    assert!(
        save.status.success(),
        "save failed:\n{}",
        String::from_utf8_lossy(&save.stderr)
    );

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--archive", "/tmp/rpi-archive"])
        .arg("--queries")
        .arg(&queries)
        .output()
        .expect("rpi-queryd runs");
    assert!(
        out.status.success(),
        "cold start failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_eq!(
        stdout, golden,
        "stdout diverged from tests/data/smoke_archive.golden (see docs to regenerate)"
    );
}

/// One TCP golden run: spawn the daemon with `--backend backend
/// --serve-threads threads`, drive the committed smoke script over the
/// socket, diff against the stdin golden, and require a clean
/// shutdown-verb exit with the stats snapshot.
fn tcp_golden_run(backend: &str, threads: usize) {
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let script = std::fs::read_to_string(data.join("smoke.q")).expect("script committed");
    let golden = std::fs::read_to_string(data.join("smoke.golden")).expect("golden committed");

    let mut child = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args([
            "--size",
            "tiny",
            "--seed",
            "11",
            "--snapshots",
            "4",
            "--shards",
            "4",
            "--listen",
            "127.0.0.1:0",
            "--backend",
            backend,
        ])
        .args(["--serve-threads", &threads.to_string()])
        .arg("--roas")
        .arg(data.join("smoke.roas"))
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("rpi-queryd spawns");

    // The daemon announces its ephemeral port on stderr once ready.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr.read_line(&mut line).expect("daemon stderr readable"),
            0,
            "daemon exited before announcing its listen address"
        );
        if let Some(rest) = line.strip_prefix("serving on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address after 'serving on'")
                .to_string();
        }
    };

    let mut conn = std::net::TcpStream::connect(&addr).expect("connect to daemon");
    conn.set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .unwrap();
    conn.write_all(script.as_bytes()).unwrap();
    conn.write_all(b"shutdown\n").unwrap();
    let mut got = String::new();
    conn.read_to_string(&mut got)
        .expect("responses until close");
    assert_eq!(
        got, golden,
        "[{backend} x{threads}] TCP-served output diverged from the stdin golden"
    );

    let status = child.wait().expect("daemon exits after shutdown verb");
    assert!(
        status.success(),
        "[{backend} x{threads}] daemon must exit 0 on protocol shutdown"
    );
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).unwrap();
    assert!(
        rest.contains("served ") && rest.contains("queries/s"),
        "[{backend} x{threads}] shutdown must print the stats snapshot:\n{rest}"
    );
}

/// The serve-path face of the golden: the same smoke script driven over
/// TCP against `--listen` must produce **byte-identical** output to the
/// stdin `--queries` path (the committed golden) — on every backend the
/// platform supports, single-threaded and sharded. A trailing `shutdown`
/// control line stops the server without signals; the daemon must then
/// exit 0 after printing its stats snapshot.
#[test]
fn tcp_served_queries_match_the_stdin_golden() {
    tcp_golden_run("sweep", 1);
    tcp_golden_run("sweep", 4);
    if rpi_query::serve::PollBackend::Epoll.supported() {
        tcp_golden_run("epoll", 1);
        tcp_golden_run("epoll", 4);
    }
}

/// Bugfix coverage: a missing `--queries` file is a one-line error
/// *before* the expensive world build, never a panic.
#[test]
fn missing_queries_file_fails_fast_with_one_line() {
    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--size", "tiny", "--queries", "/tmp/rpi-no-such-file.q"])
        .output()
        .expect("rpi-queryd runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read /tmp/rpi-no-such-file.q"),
        "error must name the file:\n{stderr}"
    );
    assert!(
        !stderr.contains("building"),
        "must fail before the world build:\n{stderr}"
    );
}

/// Bugfix coverage: an unbindable `--listen` address is a one-line
/// error before the world build, never a panic.
#[test]
fn unbindable_listen_address_fails_fast_with_one_line() {
    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--size", "tiny", "--listen", "256.0.0.1:0"])
        .output()
        .expect("rpi-queryd runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--listen: cannot bind 256.0.0.1:0"),
        "error must name the address:\n{stderr}"
    );
    assert!(
        !stderr.contains("building"),
        "must fail before the world build:\n{stderr}"
    );
}

#[test]
fn missing_archive_directory_errors_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--archive", "/tmp/rpi-archive-does-not-exist"])
        .output()
        .expect("rpi-queryd runs");
    assert!(!out.status.success(), "a missing archive must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/tmp/rpi-archive-does-not-exist is not an rpi-store archive"),
        "error must name the path on one line:\n{stderr}"
    );
}

/// Bugfix coverage: a malformed `--roas` file fails before the world
/// build with the same `path:line:` spelling as `--queries` errors.
#[test]
fn bad_roa_files_name_the_line() {
    let dir = std::env::temp_dir().join(format!("rpi-queryd-roas-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.roas");
    std::fs::write(&path, "# fine\n4.0.0.0/13-24 AS5000\n4.0.0.0/13-7 AS5000\n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--size", "tiny", "--seed", "11"])
        .arg("--roas")
        .arg(&path)
        .output()
        .expect("rpi-queryd runs");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!out.status.success(), "a bad ROA line must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad.roas:3:"),
        "stderr must locate the bad line:\n{stderr}"
    );
    assert!(
        !stderr.contains("building"),
        "must fail before the world build:\n{stderr}"
    );
}

#[test]
fn bad_query_files_name_the_line() {
    let dir = std::env::temp_dir().join(format!("rpi-queryd-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.q");
    std::fs::write(&path, "# fine\nroute AS1 4.0.0.0/13\nfrobnicate AS1\n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--size", "tiny", "--seed", "11"])
        .arg("--queries")
        .arg(&path)
        .output()
        .expect("rpi-queryd runs");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!out.status.success(), "a bad line must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad.q:3:") && stderr.contains("unknown query 'frobnicate'"),
        "stderr must locate the bad line and name the verb:\n{stderr}"
    );
    assert!(
        stderr.contains("route <vantage> <prefix>"),
        "unknown queries must list the grammar:\n{stderr}"
    );
}
