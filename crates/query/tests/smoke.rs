//! End-to-end golden test of `rpi-queryd --queries`: pipes the committed
//! smoke query file through the daemon against the deterministic tiny
//! seed-11 world and diffs stdout against the committed golden output —
//! the same check CI runs as a shell step.
//!
//! If the wire grammar or response rendering changes intentionally,
//! regenerate with:
//!
//! ```text
//! cargo run --release -p rpi-query --bin rpi-queryd -- \
//!   --size tiny --seed 11 --snapshots 4 --shards 4 \
//!   --queries crates/query/tests/data/smoke.q > crates/query/tests/data/smoke.golden
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn queries_file_matches_golden_output() {
    let data = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let queries = data.join("smoke.q");
    let golden = std::fs::read_to_string(data.join("smoke.golden")).expect("golden committed");

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args([
            "--size",
            "tiny",
            "--seed",
            "11",
            "--snapshots",
            "4",
            "--shards",
            "4",
        ])
        .arg("--queries")
        .arg(&queries)
        .output()
        .expect("rpi-queryd runs");

    assert!(
        out.status.success(),
        "rpi-queryd failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert_eq!(
        stdout, golden,
        "stdout diverged from tests/data/smoke.golden (see module docs to regenerate)"
    );
}

#[test]
fn bad_query_files_name_the_line() {
    let dir = std::env::temp_dir().join(format!("rpi-queryd-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.q");
    std::fs::write(&path, "# fine\nroute AS1 4.0.0.0/13\nfrobnicate AS1\n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_rpi-queryd"))
        .args(["--size", "tiny", "--seed", "11"])
        .arg("--queries")
        .arg(&path)
        .output()
        .expect("rpi-queryd runs");
    std::fs::remove_dir_all(&dir).ok();

    assert!(!out.status.success(), "a bad line must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad.q:3:") && stderr.contains("unknown query 'frobnicate'"),
        "stderr must locate the bad line and name the verb:\n{stderr}"
    );
    assert!(
        stderr.contains("route <vantage> <prefix>"),
        "unknown queries must list the grammar:\n{stderr}"
    );
}
