//! Snapshot-diff behaviour against real `bgp_sim::churn` output.

use bgp_sim::churn::simulate_series;
use bgp_sim::{ChurnConfig, GroundTruth, PolicyParams, Simulation, VantageSpec};
use net_topology::{InternetConfig, InternetSize};
use rpi_query::QueryEngine;

fn world() -> (net_topology::AsGraph, GroundTruth, VantageSpec) {
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(21)
        .build();
    let t = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    (g, t, spec)
}

#[test]
fn identical_snapshots_diff_empty() {
    let (g, t, spec) = world();
    let out = Simulation::new(&g, &t, &spec).run();
    let mut engine = QueryEngine::new(4);
    engine.ingest_output(&out, &g, "a");
    engine.ingest_output(&out, &g, "b");
    let d = engine
        .diff(rpi_query::SnapshotId(0), rpi_query::SnapshotId(1))
        .unwrap();
    assert!(d.is_empty(), "identical ingests must diff empty: {d:?}");
    assert_eq!(d.churned_routes(), 0);
    assert_eq!(d.from_label, "a");
    assert_eq!(d.to_label, "b");
}

#[test]
fn zero_churn_series_diffs_empty() {
    let (g, t, spec) = world();
    let cfg = ChurnConfig {
        seed: 5,
        steps: 3,
        flip_prob: 0.0,
        link_failure_prob: 0.0,
        label: "hour",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);
    assert_eq!(ids.len(), 3);
    assert_eq!(
        engine.labels().collect::<Vec<_>>(),
        vec!["hour-01", "hour-02", "hour-03"]
    );
    for w in ids.windows(2) {
        let d = engine.diff(w[0], w[1]).unwrap();
        assert!(
            d.is_empty(),
            "{} → {} not empty: {d:?}",
            d.from_label,
            d.to_label
        );
    }
}

#[test]
fn forced_churn_is_visible_in_diffs() {
    let (g, t, spec) = world();
    if t.selective_subset_origins.is_empty() {
        // Tiny worlds occasionally roll no selective origin; nothing can
        // flip and nothing can be asserted.
        return;
    }
    let cfg = ChurnConfig {
        seed: 99,
        steps: 6,
        flip_prob: 1.0,
        link_failure_prob: 0.0,
        label: "day",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);

    // The oracle is shared, so relationships never flip in this series…
    for w in ids.windows(2) {
        let d = engine.diff(w[0], w[1]).unwrap();
        assert!(d.flips.is_empty(), "same oracle ⇒ no relationship flips");
    }

    // …and the engine's diff must flag churn exactly where the simulator
    // actually changed collector content between consecutive snapshots.
    let mut any_diff = false;
    for (w, outs) in ids.windows(2).zip(series.snapshots.windows(2)) {
        let d = engine.diff(w[0], w[1]).unwrap();
        let lgs_equal = outs[0].lgs.len() == outs[1].lgs.len()
            && outs[0]
                .lgs
                .iter()
                .all(|(k, v)| outs[1].lgs.get(k).is_some_and(|w| w.rows == v.rows));
        let sim_changed = outs[0].collector.rows != outs[1].collector.rows || !lgs_equal;
        if sim_changed {
            any_diff = true;
            assert!(
                !d.is_empty(),
                "{} → {}: simulator changed but diff is empty",
                d.from_label,
                d.to_label
            );
        } else {
            assert!(
                d.churned_routes() == 0 && d.new_sa.is_empty() && d.gone_sa.is_empty(),
                "{} → {}: simulator idle but diff reports change",
                d.from_label,
                d.to_label
            );
        }
    }
    assert!(any_diff, "forced re-rolls must perturb at least one step");
}

#[test]
fn sa_deltas_track_recomputed_reports() {
    let (g, t, spec) = world();
    if t.selective_subset_origins.is_empty() {
        return;
    }
    let cfg = ChurnConfig {
        seed: 123,
        steps: 5,
        flip_prob: 0.9,
        link_failure_prob: 0.2,
        label: "day",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);

    for (w, outs) in ids.windows(2).zip(series.snapshots.windows(2)) {
        let d = engine.diff(w[0], w[1]).unwrap();
        // Recompute the SA delta directly per LG vantage and compare.
        for &lg in &spec.lg_ases {
            let (Some(va), Some(vb)) = (outs[0].lg(lg), outs[1].lg(lg)) else {
                continue;
            };
            let ra =
                rpi_core::export_policy::sa_prefixes(&rpi_core::view::BestTable::from_lg(va), &g);
            let rb =
                rpi_core::export_policy::sa_prefixes(&rpi_core::view::BestTable::from_lg(vb), &g);
            let expect_new: Vec<_> = rb.sa.difference(&ra.sa).copied().collect();
            let expect_gone: Vec<_> = ra.sa.difference(&rb.sa).copied().collect();
            let got_new: Vec<_> = d
                .new_sa
                .iter()
                .filter(|(v, _)| *v == lg)
                .map(|&(_, p)| p)
                .collect();
            let got_gone: Vec<_> = d
                .gone_sa
                .iter()
                .filter(|(v, _)| *v == lg)
                .map(|&(_, p)| p)
                .collect();
            assert_eq!(got_new, expect_new, "new SA at {lg}");
            assert_eq!(got_gone, expect_gone, "gone SA at {lg}");
        }
    }
}
