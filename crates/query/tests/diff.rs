//! Snapshot-diff behaviour against real `bgp_sim::churn` output.

use bgp_sim::churn::simulate_series;
use bgp_sim::{ChurnConfig, GroundTruth, PolicyParams, Simulation, VantageSpec};
use net_topology::{InternetConfig, InternetSize};
use rpi_query::QueryEngine;

fn world() -> (net_topology::AsGraph, GroundTruth, VantageSpec) {
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(21)
        .build();
    let t = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    (g, t, spec)
}

#[test]
fn identical_snapshots_diff_empty() {
    let (g, t, spec) = world();
    let out = Simulation::new(&g, &t, &spec).run();
    let mut engine = QueryEngine::new(4);
    engine.ingest_output(&out, &g, "a");
    engine.ingest_output(&out, &g, "b");
    let d = engine
        .diff(rpi_query::SnapshotId(0), rpi_query::SnapshotId(1))
        .unwrap();
    assert!(d.is_empty(), "identical ingests must diff empty: {d:?}");
    assert_eq!(d.churned_routes(), 0);
    assert_eq!(d.from_label, "a");
    assert_eq!(d.to_label, "b");
}

#[test]
fn zero_churn_series_diffs_empty() {
    let (g, t, spec) = world();
    let cfg = ChurnConfig {
        seed: 5,
        steps: 3,
        flip_prob: 0.0,
        link_failure_prob: 0.0,
        label: "hour",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);
    assert_eq!(ids.len(), 3);
    assert_eq!(engine.labels(), vec!["hour-01", "hour-02", "hour-03"]);
    for w in ids.windows(2) {
        let d = engine.diff(w[0], w[1]).unwrap();
        assert!(
            d.is_empty(),
            "{} → {} not empty: {d:?}",
            d.from_label,
            d.to_label
        );
    }
}

#[test]
fn forced_churn_is_visible_in_diffs() {
    let (g, t, spec) = world();
    if t.selective_subset_origins.is_empty() {
        // Tiny worlds occasionally roll no selective origin; nothing can
        // flip and nothing can be asserted.
        return;
    }
    let cfg = ChurnConfig {
        seed: 99,
        steps: 6,
        flip_prob: 1.0,
        link_failure_prob: 0.0,
        label: "day",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);

    // The oracle is shared, so relationships never flip in this series…
    for w in ids.windows(2) {
        let d = engine.diff(w[0], w[1]).unwrap();
        assert!(d.flips.is_empty(), "same oracle ⇒ no relationship flips");
    }

    // …and the engine's diff must flag churn exactly where the simulator
    // actually changed collector content between consecutive snapshots.
    let mut any_diff = false;
    for (w, outs) in ids.windows(2).zip(series.snapshots.windows(2)) {
        let d = engine.diff(w[0], w[1]).unwrap();
        let lgs_equal = outs[0].lgs.len() == outs[1].lgs.len()
            && outs[0]
                .lgs
                .iter()
                .all(|(k, v)| outs[1].lgs.get(k).is_some_and(|w| w.rows == v.rows));
        let sim_changed = outs[0].collector.rows != outs[1].collector.rows || !lgs_equal;
        if sim_changed {
            any_diff = true;
            assert!(
                !d.is_empty(),
                "{} → {}: simulator changed but diff is empty",
                d.from_label,
                d.to_label
            );
        } else {
            assert!(
                d.churned_routes() == 0 && d.new_sa.is_empty() && d.gone_sa.is_empty(),
                "{} → {}: simulator idle but diff reports change",
                d.from_label,
                d.to_label
            );
        }
    }
    assert!(any_diff, "forced re-rolls must perturb at least one step");
}

#[test]
fn vantage_loss_and_return_counts_whole_tables() {
    // A vantage disappearing mid-series counts all its routes as
    // removed; its return counts them as added — whichever ingest path
    // built the snapshots.
    let (g, t, spec) = world();
    let out = Simulation::new(&g, &t, &spec).run();
    let &lost_lg = out.lgs.keys().next().expect("world has LGs");
    let mut without = out.clone();
    // Remove the vantage entirely: its LG view and (if it is also a
    // collector peer) its collector rows — otherwise it would merely
    // degrade to a collector-peer vantage instead of disappearing.
    without.lgs.remove(&lost_lg);
    without.collector.peers.retain(|&p| p != lost_lg);
    for rows in without.collector.rows.values_mut() {
        rows.retain(|r| r.peer != lost_lg);
    }
    without.collector.rows.retain(|_, rows| !rows.is_empty());

    for incremental in [false, true] {
        let mut engine = QueryEngine::new(4);
        engine.ingest_output(&out, &g, "t0");
        if incremental {
            engine.ingest_output_incremental(&out, &without, &g, "t1");
            engine.ingest_output_incremental(&without, &out, &g, "t2");
        } else {
            engine.ingest_output(&without, &g, "t1");
            engine.ingest_output(&out, &g, "t2");
        }
        let ids: Vec<_> = (0..3).map(rpi_query::SnapshotId).collect();

        let route_count = out.lgs[&lost_lg]
            .rows
            .values()
            .filter(|rows| rows.iter().any(|r| r.best && !r.path.is_empty()))
            .count();
        let gone = engine.diff(ids[0], ids[1]).unwrap();
        let churn = gone
            .churn
            .iter()
            .find(|c| c.vantage == lost_lg)
            .expect("lost vantage appears in the churn report");
        assert_eq!(
            (churn.added, churn.removed, churn.changed),
            (0, route_count, 0),
            "incremental={incremental}"
        );

        let back = engine.diff(ids[1], ids[2]).unwrap();
        let churn = back.churn.iter().find(|c| c.vantage == lost_lg).unwrap();
        assert_eq!(
            (churn.added, churn.removed, churn.changed),
            (route_count, 0, 0),
            "incremental={incremental}"
        );

        // And the outer endpoints are identical: the loss round-trips.
        let outer = engine.diff(ids[0], ids[2]).unwrap();
        assert!(outer.is_empty(), "incremental={incremental}: {outer:?}");
    }
}

#[test]
fn non_adjacent_diff_equals_direct_comparison() {
    // `diff @0..3` must compare the endpoint snapshots directly — the
    // same answer whether or not intermediate snapshots churned, and the
    // same through the wire grammar as through the API.
    let (g, t, spec) = world();
    let cfg = ChurnConfig {
        seed: 99,
        steps: 4,
        flip_prob: 0.8,
        link_failure_prob: 0.3,
        label: "day",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);

    // Ingest the endpoint snapshots alone into a second engine: the
    // non-adjacent diff must match this two-snapshot engine's answer.
    let mut endpoints = QueryEngine::new(4);
    endpoints.ingest_output(&series.snapshots[0], &g, &series.labels[0]);
    endpoints.ingest_output(&series.snapshots[3], &g, &series.labels[3]);

    let wide = engine.diff(ids[0], ids[3]).unwrap();
    let direct = endpoints
        .diff(rpi_query::SnapshotId(0), rpi_query::SnapshotId(1))
        .unwrap();
    assert_eq!(wide.new_sa, direct.new_sa);
    assert_eq!(wide.gone_sa, direct.gone_sa);
    assert_eq!(wide.churned_routes(), direct.churned_routes());

    // The wire grammar reaches the same result.
    let req = rpi_query::parse("diff @0..3").unwrap();
    match engine.execute(&req).unwrap() {
        rpi_query::Response::Diff(d) => assert_eq!(d, wide),
        other => panic!("diff answered {other:?}"),
    }

    // A reverse diff swaps the roles exactly.
    let rev = engine.diff(ids[3], ids[0]).unwrap();
    assert_eq!(rev.new_sa, wide.gone_sa);
    assert_eq!(rev.gone_sa, wide.new_sa);
    assert_eq!(rev.churned_routes(), wide.churned_routes());
}

#[test]
fn sa_deltas_track_recomputed_reports() {
    let (g, t, spec) = world();
    if t.selective_subset_origins.is_empty() {
        return;
    }
    let cfg = ChurnConfig {
        seed: 123,
        steps: 5,
        flip_prob: 0.9,
        link_failure_prob: 0.2,
        label: "day",
    };
    let series = simulate_series(&g, &t, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series(&series, &g);

    for (w, outs) in ids.windows(2).zip(series.snapshots.windows(2)) {
        let d = engine.diff(w[0], w[1]).unwrap();
        // Recompute the SA delta directly per LG vantage and compare.
        for &lg in &spec.lg_ases {
            let (Some(va), Some(vb)) = (outs[0].lg(lg), outs[1].lg(lg)) else {
                continue;
            };
            let ra =
                rpi_core::export_policy::sa_prefixes(&rpi_core::view::BestTable::from_lg(va), &g);
            let rb =
                rpi_core::export_policy::sa_prefixes(&rpi_core::view::BestTable::from_lg(vb), &g);
            let expect_new: Vec<_> = rb.sa.difference(&ra.sa).copied().collect();
            let expect_gone: Vec<_> = ra.sa.difference(&rb.sa).copied().collect();
            let got_new: Vec<_> = d
                .new_sa
                .iter()
                .filter(|(v, _)| *v == lg)
                .map(|&(_, p)| p)
                .collect();
            let got_gone: Vec<_> = d
                .gone_sa
                .iter()
                .filter(|(v, _)| *v == lg)
                .map(|&(_, p)| p)
                .collect();
            assert_eq!(got_new, expect_new, "new SA at {lg}");
            assert_eq!(got_gone, expect_gone, "gone SA at {lg}");
        }
    }
}
