//! The incremental-ingest correctness contract, enforced differentially:
//! for every churn scenario, a snapshot built as a copy-on-write overlay
//! over its predecessor must be **query-for-query byte-identical** to a
//! from-scratch index of the same tables.
//!
//! A seeded scenario generator drives diverse event mixes through both
//! ingest paths — policy flips and re-announcements with changed paths
//! (churn re-rolls), transient link failures with conditional
//! advertisement (flaps), relationship flips (the oracle changes
//! mid-series), and vantage loss/return (an LG or collector peer
//! disappears for a few snapshots) — then executes a randomized mixed
//! batch of every protocol verb against both engines and compares the
//! *rendered* responses byte for byte. Errors must match too: the two
//! engines may not even disagree about what is unanswerable.
//!
//! CI runs this suite as a dedicated step over the fixed seed matrix
//! below; `RPI_DIFF_SEEDS=seed1,seed2,…` adds extra seeds without a
//! rebuild.

use rand::prelude::*;
use rand::rngs::StdRng;

use bgp_sim::churn::simulate_series;
use bgp_sim::{ChurnConfig, GroundTruth, PolicyParams, SimOutput, VantageSpec};
use bgp_types::{Asn, Ipv4Prefix, Relationship};
use net_topology::{AsGraph, InternetConfig, InternetSize};
use rpi_query::{render_response, Query, QueryEngine, QueryRequest, Scope, SnapshotId};

const SNAPSHOTS: usize = 8;
const QUERIES: usize = 400;

/// One churn scenario: per-step outputs, labels and oracles (the oracle
/// list is what lets a scenario flip relationships mid-series).
struct Scenario {
    labels: Vec<String>,
    outputs: Vec<SimOutput>,
    oracles: Vec<AsGraph>,
    /// ASes worth querying (vantages, mutated vantages, bogus).
    vantages: Vec<Asn>,
    /// Prefixes worth querying (from the tables, plus bogus).
    prefixes: Vec<Ipv4Prefix>,
}

fn some_edge(g: &AsGraph, rng: &mut StdRng) -> Option<(Asn, Asn, Relationship)> {
    let mut edges = Vec::new();
    for a in g.ases() {
        for (b, rel) in g.neighbors(a) {
            edges.push((a, b, rel));
            if edges.len() >= 64 {
                break;
            }
        }
    }
    edges.choose(rng).copied()
}

fn build_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_5EED);
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(seed)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);

    // Event mix: every scenario flips policies and fails links at a
    // seed-dependent rate (re-announcements with changed paths, flaps).
    let cfg = ChurnConfig {
        seed,
        steps: SNAPSHOTS,
        flip_prob: rng.gen_range(0.05..0.6),
        link_failure_prob: rng.gen_range(0.05..0.4),
        label: "fz",
    };
    let series = simulate_series(&g, &truth, &spec, &cfg);
    let labels = series.labels;
    let mut outputs = series.snapshots;

    // Vantage loss: one LG and one collector peer disappear for a
    // stretch of the series and come back (their tables vanish from the
    // affected snapshots, exactly as a dead feed would look).
    if SNAPSHOTS >= 4 {
        let from = rng.gen_range(1..SNAPSHOTS - 2);
        let to = rng.gen_range(from + 1..SNAPSHOTS);
        let lg_pool: Vec<Asn> = outputs[0].lgs.keys().copied().collect();
        if let Some(&lg) = lg_pool.choose(&mut rng) {
            for out in &mut outputs[from..to] {
                out.lgs.remove(&lg);
            }
        }
        if let Some(&peer) = outputs[0].collector.peers.clone().choose(&mut rng) {
            let from = rng.gen_range(1..SNAPSHOTS - 1);
            for out in &mut outputs[from..] {
                out.collector.peers.retain(|&p| p != peer);
                for rows in out.collector.rows.values_mut() {
                    rows.retain(|r| r.peer != peer);
                }
                out.collector.rows.retain(|_, rows| !rows.is_empty());
            }
        }
    }

    // Relationship flip: from a random step onward the oracle loses one
    // edge and regains it under a different relationship, so customer
    // cones and Fig. 4 classifications genuinely move.
    let mut oracles = vec![g.clone(); outputs.len()];
    if let Some((a, b, rel)) = some_edge(&g, &mut rng) {
        let mut flipped = g.clone();
        flipped.remove_edge(a, b);
        let new_rel = match rel {
            Relationship::Customer | Relationship::Provider => Relationship::Peer,
            _ => Relationship::Customer,
        };
        let _ = flipped.add_edge(a, b, new_rel);
        let from = rng.gen_range(1..outputs.len());
        for o in &mut oracles[from..] {
            *o = flipped.clone();
        }
    }

    // Query universes.
    let mut vantages: Vec<Asn> = spec.collector_peers.clone();
    vantages.extend(&spec.lg_ases);
    vantages.push(Asn(65_500)); // never a vantage
    vantages.dedup();
    let mut prefixes: Vec<Ipv4Prefix> = outputs
        .iter()
        .flat_map(|o| o.collector.rows.keys().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    prefixes.push("203.0.113.0/24".parse().unwrap()); // never announced
    prefixes.push("0.0.0.0/0".parse().unwrap());

    Scenario {
        labels,
        outputs,
        oracles,
        vantages,
        prefixes,
    }
}

/// Ingests the scenario twice: from scratch every snapshot, and
/// incrementally (first snapshot full, rest as COW overlays).
fn ingest_both(sc: &Scenario, shards: usize) -> (QueryEngine, QueryEngine) {
    let mut full = QueryEngine::new(shards);
    let mut incr = QueryEngine::new(shards);
    for (i, (label, out)) in sc.labels.iter().zip(&sc.outputs).enumerate() {
        full.ingest_output(out, &sc.oracles[i], label);
        if i == 0 {
            incr.ingest_output(out, &sc.oracles[i], label);
        } else {
            incr.ingest_output_incremental(&sc.outputs[i - 1], out, &sc.oracles[i], label);
        }
    }
    (full, incr)
}

fn arb_point_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..4u8) {
        0 => Scope::Latest,
        1 => Scope::Id(SnapshotId(rng.gen_range(0..n as u32))),
        2 => Scope::Id(SnapshotId(n as u32 + 3)), // invalid: errors must match too
        _ => Scope::All,                          // scope mismatch for point queries
    }
}

fn arb_history_scope(rng: &mut StdRng, n: usize) -> Scope {
    match rng.gen_range(0..3u8) {
        0 => Scope::All,
        1 => {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(a..n as u32);
            Scope::Range(SnapshotId(a), SnapshotId(b))
        }
        _ => Scope::Latest,
    }
}

fn arb_request(rng: &mut StdRng, sc: &Scenario, n: usize) -> QueryRequest {
    let vantage = *sc.vantages.choose(rng).unwrap();
    let prefix = *sc.prefixes.choose(rng).unwrap();
    match rng.gen_range(0..13u8) {
        0 => Query::Route { vantage, prefix }.at(arb_point_scope(rng, n)),
        1 => Query::Resolve { vantage, prefix }.at(arb_point_scope(rng, n)),
        2 => Query::SaStatus { vantage, prefix }.at(arb_point_scope(rng, n)),
        3 => {
            let b = *sc.vantages.choose(rng).unwrap();
            Query::Relationship { a: vantage, b }.at(arb_point_scope(rng, n))
        }
        4 => Query::PolicySummary { asn: vantage }.at(arb_point_scope(rng, n)),
        5 => {
            // Diffs across adjacent and non-adjacent endpoints, both
            // directions, occasionally labels/invalid via point scopes.
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            Query::Diff.at(Scope::Range(SnapshotId(a), SnapshotId(b)))
        }
        6 => Query::SaHistory { vantage, prefix }.at(arb_history_scope(rng, n)),
        7 => Query::UptimeHistogram { vantage }.at(arb_history_scope(rng, n)),
        8 => Query::TopKSaOrigins {
            vantage,
            k: rng.gen_range(0..6usize),
        }
        .at(arb_history_scope(rng, n)),
        9 => Query::PersistenceClass { vantage, prefix }.at(arb_history_scope(rng, n)),
        // The security verbs differ too, even over a benign series with
        // no ROA table (everything validates unknown, zero events).
        10 => Query::Rov { vantage, prefix }.at(arb_point_scope(rng, n)),
        11 => Query::Hijacks.at(arb_history_scope(rng, n)),
        _ => Query::Leaks.at(arb_point_scope(rng, n)),
    }
}

/// What the observatory would print for this request — the byte-level
/// equivalence surface (errors included).
fn rendered(engine: &QueryEngine, req: &QueryRequest) -> String {
    match engine.execute(req) {
        Ok(resp) => render_response(req, &resp),
        Err(e) => format!("error: {e}"),
    }
}

fn run_differential(seed: u64) {
    let sc = build_scenario(seed);

    // The scenario must bite: a seed whose event mix never moves a route
    // would hold the differential vacuously.
    let route_events: usize = sc
        .outputs
        .windows(2)
        .map(|w| bgp_sim::output_delta(&w[0], &w[1]).route_events())
        .sum();
    assert!(
        route_events > 0,
        "seed {seed}: degenerate scenario (no churn at all) — pick another seed"
    );

    let (full, incr) = ingest_both(&sc, 4);

    assert_eq!(full.snapshot_count(), incr.snapshot_count());
    assert_eq!(full.labels(), incr.labels());
    // Append-only interning from identical inputs interns identical sets.
    assert_eq!(full.interned_sizes(), incr.interned_sizes(), "seed {seed}");

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E_55ED);
    let n = full.snapshot_count();
    let mut answered = 0usize;
    for i in 0..QUERIES {
        let req = arb_request(&mut rng, &sc, n);
        let a = rendered(&full, &req);
        let b = rendered(&incr, &req);
        assert_eq!(
            a, b,
            "seed {seed}, query {i}: full and incremental ingest disagree on {req:?}"
        );
        if !a.starts_with("error:") {
            answered += 1;
        }
    }
    assert!(
        answered > QUERIES / 2,
        "seed {seed}: scenario too degenerate, only {answered}/{QUERIES} answered"
    );

    // The incremental engine physically shares structure; the full one
    // cannot (every snapshot was built from scratch).
    let stats = incr.sharing_stats();
    assert!(
        stats.shared_nodes > 0,
        "seed {seed}: COW overlays must share trie nodes: {stats:?}"
    );
    assert!(stats.shared_bytes > 0);
    // …but not *everything* can be shared in a churning series: the
    // touched spines were path-copied.
    let first = incr
        .sharing_with_prev(SnapshotId(0))
        .map_or(0, |(_, total)| total);
    assert!(
        stats.shared_nodes < stats.total_nodes - first,
        "seed {seed}: a churning series cannot share every node: {stats:?}"
    );
    assert_eq!(full.sharing_stats().shared_nodes, 0);

    // Batched execution flows through the same snapshots: spot-check the
    // planner path with a mixed batch on the incremental engine.
    let reqs: Vec<QueryRequest> = (0..64).map(|_| arb_request(&mut rng, &sc, n)).collect();
    let batched = incr.execute_batch(&reqs);
    for (req, res) in reqs.iter().zip(batched) {
        let line = match res {
            Ok(resp) => render_response(req, &resp),
            Err(e) => format!("error: {e}"),
        };
        assert_eq!(
            line,
            rendered(&full, req),
            "seed {seed}: batched path diverged"
        );
    }
}

// The fixed seed matrix CI runs as a dedicated step.

#[test]
fn differential_seed_0xa1() {
    run_differential(0xA1);
}

#[test]
fn differential_seed_0xb2() {
    run_differential(0xB2);
}

#[test]
fn differential_seed_0xc3() {
    run_differential(0xC3);
}

/// Extra seeds without a rebuild: `RPI_DIFF_SEEDS=7,8,9 cargo test …`.
#[test]
fn differential_extra_seeds_from_env() {
    let Ok(spec) = std::env::var("RPI_DIFF_SEEDS") else {
        return;
    };
    for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let seed: u64 = part
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad seed '{part}' in RPI_DIFF_SEEDS"));
        run_differential(seed);
    }
}

/// Regression: the engine-wide customer-cone cache must not leak across
/// ingest chains. A second incremental series under a *different*
/// oracle starts with a from-scratch ingest (which never runs the
/// incremental oracle comparison), so the cache built under the first
/// oracle must be dropped there — otherwise churned routes of the
/// second series are SA-classified with stale cones.
#[test]
fn cone_cache_does_not_leak_across_oracle_switches() {
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(2)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    let cfg = ChurnConfig {
        seed: 2,
        steps: 4,
        flip_prob: 0.6,
        link_failure_prob: 0.3,
        label: "s",
    };
    let series = simulate_series(&g, &truth, &spec, &cfg);

    // A second oracle that genuinely moves a vantage's cone: demote one
    // Customer edge of the first vantage to Peer.
    let mut rng = StdRng::seed_from_u64(2);
    let mut flipped = g.clone();
    let vantage = spec.collector_peers[0];
    let customers: Vec<Asn> = g.customers_of(vantage).collect();
    let &victim = customers.choose(&mut rng).expect("vantage has customers");
    flipped.remove_edge(vantage, victim);
    let _ = flipped.add_edge(vantage, victim, Relationship::Peer);

    let ingest = |incremental: bool| -> QueryEngine {
        let mut e = QueryEngine::new(4);
        for (oracle, tag) in [(&g, "a"), (&flipped, "b")] {
            for (i, out) in series.snapshots.iter().enumerate() {
                let label = format!("{tag}-{i}");
                if incremental && i > 0 {
                    e.ingest_output_incremental(&series.snapshots[i - 1], out, oracle, &label);
                } else {
                    e.ingest_output(out, oracle, &label);
                }
            }
        }
        e
    };
    let full = ingest(false);
    let incr = ingest(true);
    let n = full.snapshot_count();
    for i in 0..n as u32 {
        for &v in spec.collector_peers.iter().chain(&spec.lg_ases) {
            let req = Query::PolicySummary { asn: v }.at(Scope::Id(SnapshotId(i)));
            assert_eq!(
                rendered(&full, &req),
                rendered(&incr, &req),
                "stale cones at snapshot {i}, vantage {v}"
            );
        }
    }
}

/// Regression: a collector peer appearing mid-series brings rows whose
/// communities were never compared against a predecessor; the
/// incremental path must intern them wholesale so the engine lands on
/// exactly the symbol set a full re-index builds.
#[test]
fn added_peer_communities_are_interned() {
    use bgp_sim::CollectorRow;
    use bgp_types::Community;

    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(5)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    let out = bgp_sim::Simulation::new(&g, &truth, &spec).run();

    // Snapshot 2 gains a brand-new peer whose one row carries a
    // community no other row has ever used.
    let mut with_peer = out.clone();
    let new_peer = Asn(64_999);
    with_peer.collector.peers.push(new_peer);
    let (&prefix, rows) = out.collector.rows.iter().next().expect("rows exist");
    let origin = *rows[0].path.last().unwrap();
    with_peer
        .collector
        .rows
        .get_mut(&prefix)
        .unwrap()
        .push(CollectorRow {
            peer: new_peer,
            path: vec![new_peer, origin],
            communities: vec![Community::new(64_999, 777)],
        });

    let mut full = QueryEngine::new(4);
    full.ingest_output(&out, &g, "t0");
    full.ingest_output(&with_peer, &g, "t1");

    let mut incr = QueryEngine::new(4);
    incr.ingest_output(&out, &g, "t0");
    incr.ingest_output_incremental(&out, &with_peer, &g, "t1");

    assert_eq!(
        full.interned_sizes(),
        incr.interned_sizes(),
        "the added peer's community must be interned incrementally too"
    );
    let req = Query::Route {
        vantage: new_peer,
        prefix,
    }
    .at(Scope::Id(SnapshotId(1)));
    assert_eq!(rendered(&full, &req), rendered(&incr, &req));
}

/// The rpi-sec acceptance contract: a seeded attack injected into a
/// churn series flows through the incremental delta path, and the
/// detection verbs (`rov`, `hijacks`, `leaks`) answer byte-identically
/// on both engines — *and* genuinely convict the injected attacker,
/// so the differential is not vacuous.
#[test]
fn attack_scenarios_detect_identically() {
    use bgp_sim::{inject_attack, AttackKind, AttackScenario};
    use rpi_query::Response;
    use rpi_sec::RoaTable;

    const AT_STEP: usize = 2;
    const STEPS: usize = 6;

    // Deterministic scenario search: the first seed in a small window
    // that offers a viable victim/attacker pair for this kind.
    let build = |kind: AttackKind| -> (AsGraph, Vec<String>, Vec<SimOutput>, AttackScenario) {
        for seed in 0x5EC0..0x5EC8u64 {
            let g = InternetConfig::of_size(InternetSize::Tiny)
                .with_seed(seed)
                .build();
            let truth = GroundTruth::generate(&g, &PolicyParams::default());
            let spec = VantageSpec::paper_like(&g, 8, 4);
            let cfg = ChurnConfig {
                seed,
                steps: STEPS,
                flip_prob: 0.2,
                link_failure_prob: 0.1,
                label: "atk",
            };
            let series = simulate_series(&g, &truth, &spec, &cfg);
            let mut outputs = series.snapshots;
            if let Some(sc) = inject_attack(kind, &g, &mut outputs, seed, AT_STEP) {
                return (g, series.labels, outputs, sc);
            }
        }
        panic!("no seed in the window injects a {}", kind.name());
    };

    for kind in AttackKind::ALL {
        let (g, labels, outputs, sc) = build(kind);

        let mut full = QueryEngine::new(4);
        let mut incr = QueryEngine::new(4);
        for (i, (label, out)) in labels.iter().zip(&outputs).enumerate() {
            full.ingest_output(out, &g, label);
            if i == 0 {
                incr.ingest_output(out, &g, label);
            } else {
                incr.ingest_output_incremental(&outputs[i - 1], out, &g, label);
            }
        }
        // Both engines get the scenario's ground-truth ROAs, so `rov`
        // has something to convict with.
        full.set_roas(RoaTable::new(sc.roas()));
        incr.set_roas(RoaTable::new(sc.roas()));

        // Every detection verb over every interesting scope and vantage.
        let n = outputs.len() as u32;
        let mut vantages: Vec<Asn> = outputs[0].collector.peers.clone();
        vantages.extend(outputs[0].lgs.keys());
        let mut reqs: Vec<QueryRequest> = vec![
            Query::Hijacks.at(Scope::All),
            Query::Hijacks.at(Scope::Range(SnapshotId(0), SnapshotId(n - 1))),
            Query::Hijacks.at(Scope::Range(SnapshotId(AT_STEP as u32), SnapshotId(n - 1))),
        ];
        for i in 0..n {
            reqs.push(Query::Leaks.at(Scope::Id(SnapshotId(i))));
        }
        for &v in &vantages {
            for prefix in [sc.victim_prefix, sc.attack_prefix] {
                reqs.push(Query::Rov { vantage: v, prefix }.at(Scope::Latest));
                reqs.push(Query::Rov { vantage: v, prefix }.at(Scope::Id(SnapshotId(0))));
            }
        }
        let mut rov_invalid = 0usize;
        for req in &reqs {
            let a = rendered(&full, req);
            let b = rendered(&incr, req);
            assert_eq!(
                a,
                b,
                "{}: full and incremental ingest disagree on {req:?}",
                kind.name()
            );
            if a.contains("invalid-origin") || a.contains("invalid-length") {
                rov_invalid += 1;
            }
        }

        // The injection is actually detected, with the right ground truth.
        match kind {
            AttackKind::PrefixHijack | AttackKind::SubprefixHijack => {
                let Ok(Response::Hijacks(events)) = incr.execute(&Query::Hijacks.at(Scope::All))
                else {
                    panic!("hijacks must answer over the attacked series");
                };
                let hit = events
                    .iter()
                    .find(|e| e.origin == sc.attacker && e.prefix == sc.attack_prefix)
                    .unwrap_or_else(|| {
                        panic!(
                            "{}: injected attacker {} on {} missing from {events:?}",
                            kind.name(),
                            sc.attacker,
                            sc.attack_prefix
                        )
                    });
                assert_eq!(
                    hit.snapshot,
                    SnapshotId(AT_STEP as u32),
                    "{}: first conviction must land on the attack step",
                    kind.name()
                );
                assert!(
                    rov_invalid > 0,
                    "{}: under the victim's ROAs some rov answer must go invalid",
                    kind.name()
                );
            }
            AttackKind::RouteLeak => {
                let Ok(Response::Leaks(events)) =
                    incr.execute(&Query::Leaks.at(Scope::Id(SnapshotId(AT_STEP as u32))))
                else {
                    panic!("leaks must answer at the attack step");
                };
                assert!(
                    events.iter().any(|e| e.leaker == sc.attacker),
                    "route-leak: leaker {} missing from {events:?}",
                    sc.attacker
                );
                // And before the attack the series is quiet about them.
                let Ok(Response::Leaks(before)) =
                    incr.execute(&Query::Leaks.at(Scope::Id(SnapshotId(0))))
                else {
                    panic!("leaks must answer before the attack");
                };
                assert!(
                    before.iter().all(|e| e.leaker != sc.attacker),
                    "route-leak: the leaker must not be convicted pre-attack"
                );
            }
        }
    }
}

/// Zero churn is the sharing fast path: every snapshot after the first
/// is one `Arc` clone per vantage, and the series shares ~everything.
#[test]
fn zero_churn_shares_everything() {
    let g = InternetConfig::of_size(InternetSize::Tiny)
        .with_seed(31)
        .build();
    let truth = GroundTruth::generate(&g, &PolicyParams::default());
    let spec = VantageSpec::paper_like(&g, 8, 4);
    let cfg = ChurnConfig {
        seed: 31,
        steps: 4,
        flip_prob: 0.0,
        link_failure_prob: 0.0,
        label: "calm",
    };
    let series = simulate_series(&g, &truth, &spec, &cfg);
    let mut engine = QueryEngine::new(4);
    let ids = engine.ingest_series_incremental(&series, &g);
    assert_eq!(ids.len(), 4);
    let stats = engine.sharing_stats();
    // Snapshots 1..3 share every node with their predecessor: shared =
    // 3/4 of the total.
    assert_eq!(
        stats.shared_nodes * 4,
        stats.total_nodes * 3,
        "calm series must share all non-first structure: {stats:?}"
    );
    for w in ids.windows(2) {
        let d = engine.diff(w[0], w[1]).unwrap();
        assert!(d.is_empty(), "calm series must diff empty: {d:?}");
    }
}
